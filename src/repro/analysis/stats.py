"""Statistical helpers for campaign estimates.

The laptop-scale campaigns classify tens of faults per benchmark where
the paper injected 15,000, so every coverage or SDC-fraction estimate
carries real sampling error. EXPERIMENTS.md reports Wilson score
intervals; these helpers compute them without any SciPy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

#: Two-sided z for 95% confidence.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class Proportion:
    """A binomial proportion estimate with its confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (f"{100 * self.point:.1f}% "
                f"[{100 * self.low:.1f}, {100 * self.high:.1f}]")


def wilson_interval(successes: int, trials: int,
                    z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the extremes (0/n and n/n) and for the small samples
    the campaigns produce, unlike the normal approximation.
    """
    if trials < 0 or not 0 <= successes <= trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return 0.0, 1.0
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    margin = (z * math.sqrt(p * (1 - p) / trials
                            + z2 / (4 * trials * trials))) / denom
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return low, high


def proportion(successes: int, trials: int, z: float = Z_95) -> Proportion:
    """Bundle a proportion with its Wilson interval."""
    low, high = wilson_interval(successes, trials, z)
    return Proportion(successes, trials, low, high)


def mean_and_stderr(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and standard error (0.0 stderr for n < 2)."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var / n)


def intervals_overlap(a: Proportion, b: Proportion) -> bool:
    """True when two proportions' intervals overlap (a cheap, conservative
    "not clearly different" check for the shape assertions)."""
    return a.low <= b.high and b.low <= a.high


__all__ = ["Z_95", "Proportion", "wilson_interval", "proportion",
           "mean_and_stderr", "intervals_overlap"]
