"""Value-locality characterisation (paper Figure 6).

Figure 6 plots, for load addresses, store addresses and store values, the
percentage of dynamic values whose bit *i* differs from the previous
value's bit *i* — the statistic that makes bit-mask filters work: most
positions change in fewer than 1% of values, and the changing positions
concentrate at the low-order end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..isa.interpreter import Interpreter
from ..isa.program import Program

STREAM_KINDS = ("load_addr", "store_addr", "store_value")


def collect_mem_streams(programs: Iterable[Program],
                        max_instructions: int = 50_000
                        ) -> Dict[str, List[int]]:
    """Interpret *programs* and gather their dynamic load-address,
    store-address and store-value streams."""
    streams: Dict[str, List[int]] = {kind: [] for kind in STREAM_KINDS}
    for program in programs:
        interp = Interpreter(program)
        interp.trace_memory_ops = True
        interp.run(max_instructions=max_instructions)
        for kind, value in interp.mem_trace:
            streams[kind].append(value)
    return streams


def bit_change_fractions(values: Sequence[int],
                         bits: int = 64) -> List[float]:
    """Per-bit-position fraction of consecutive-value changes.

    ``result[i]`` is the fraction of values (after the first) whose bit
    *i* differs from the previous value's bit *i*.
    """
    if len(values) < 2:
        return [0.0] * bits
    counts = [0] * bits
    prev = values[0]
    for value in values[1:]:
        diff = prev ^ value
        bit = 0
        while diff:
            if diff & 1:
                counts[bit] += 1
            diff >>= 1
            bit += 1
        prev = value
    n = len(values) - 1
    return [c / n for c in counts[:bits]]


def mean_bits_changed(values: Sequence[int]) -> float:
    """Average Hamming distance between consecutive values (the paper
    reports ~3 bits per 64-bit write on average)."""
    if len(values) < 2:
        return 0.0
    total = sum((a ^ b).bit_count() for a, b in zip(values, values[1:]))
    return total / (len(values) - 1)


def last_value_hit_rate(values: Sequence[int]) -> float:
    """Fraction of values identical to their predecessor — classic
    last-value locality (Lipasti et al., the paper's background [13]).

    Value *prediction* needs all 64 bits right; FaultHound's hint only
    needs the unchanging bits right, which is why
    :func:`neighbourhood_hit_rate` is far higher on the same stream.
    """
    if len(values) < 2:
        return 0.0
    hits = sum(1 for a, b in zip(values, values[1:]) if a == b)
    return hits / (len(values) - 1)


def neighbourhood_hit_rate(values: Sequence[int],
                           changing_mask: Optional[int] = None) -> float:
    """Fraction of values matching their predecessor in every bit outside
    *changing_mask* — the filter's notion of a hit (Figure 1's subspace).

    With ``changing_mask=None`` the mask is derived from the stream itself
    (any position that ever changes), giving the ceiling a fully-learned
    filter could reach.
    """
    if len(values) < 2:
        return 0.0
    if changing_mask is None:
        changing_mask = 0
        for a, b in zip(values, values[1:]):
            changing_mask |= a ^ b
        # positions that change in >=1% of transitions count as learned
        fractions = bit_change_fractions(values)
        changing_mask = 0
        for bit, fraction in enumerate(fractions):
            if fraction >= 0.01:
                changing_mask |= 1 << bit
    keep = ~changing_mask
    hits = sum(1 for a, b in zip(values, values[1:])
               if (a ^ b) & keep == 0)
    return hits / (len(values) - 1)


__all__ = ["STREAM_KINDS", "collect_mem_streams", "bit_change_fractions",
           "mean_bits_changed", "last_value_hit_rate",
           "neighbourhood_hit_rate"]
