"""FaultHound — the paper's primary contribution.

The package implements, mechanism by mechanism:

- Section 2.1: PBFS and PBFS-biased baselines (:mod:`.pbfs`)
- Figure 2:    sticky / standard / biased state machines (:mod:`.state_machines`)
- Section 3.1: clustering via inverted (value-indexed) counting TCAMs
  (:mod:`.bitmask_filter`, :mod:`.tcam`)
- Section 3.2: the per-bit second-level delinquent filter (:mod:`.second_level`)
- Section 3.4: per-entry squash state machines (:mod:`.squash_machine`)
- Sections 3.3/3.5: action arbitration — suppress / replay / squash /
  singleton re-execute (:mod:`.faulthound`)
"""

from .actions import CheckAction, CheckKind, CheckResult
from .state_machines import (BiasedMachine, StandardCounter, StickyCounter)
from .filter_bank import (ArrayBank, BitParallelBiasedBank,
                          BitParallelStickyBank, make_bank)
from .bitmask_filter import BitmaskFilter
from .tcam import LookupResult, TCAM
from .second_level import SecondLevelFilter
from .squash_machine import SquashMachineBank
from .faulthound import FaultHoundUnit
from .pbfs import PBFSUnit
from .screening import NullScreeningUnit, ScreeningUnit

__all__ = [
    "CheckAction",
    "CheckKind",
    "CheckResult",
    "BiasedMachine",
    "StandardCounter",
    "StickyCounter",
    "ArrayBank",
    "BitParallelBiasedBank",
    "BitParallelStickyBank",
    "make_bank",
    "BitmaskFilter",
    "LookupResult",
    "TCAM",
    "SecondLevelFilter",
    "SquashMachineBank",
    "FaultHoundUnit",
    "PBFSUnit",
    "ScreeningUnit",
    "NullScreeningUnit",
]
