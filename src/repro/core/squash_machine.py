"""Squash state machines: distinguishing rename faults (Section 3.4).

A rename fault does not change a value — it makes computation consume an
unintended (but unchanged) value, which both disrupts value locality *and*
changes the identity of the closest-matching filter. One 8-state biased
machine per TCAM entry tracks whether that entry was the closest-matching
filter in any of the last several replay triggers; a trigger closest to an
entry that has been quiet for 7 consecutive triggers signals a likely
rename fault and licenses a full pipeline squash.
"""

from __future__ import annotations

from typing import List

from .state_machines import BiasedMachine


class SquashMachineBank:
    """One biased machine per first-level TCAM entry."""

    def __init__(self, entries: int, num_states: int = 8):
        if num_states < 2:
            raise ValueError("squash machines need >= 2 states")
        self._machines: List[BiasedMachine] = [
            BiasedMachine(num_states - 1) for _ in range(entries)]
        self.squashes_allowed = 0
        self.squashes_suppressed = 0

    def __len__(self) -> int:
        return len(self._machines)

    def observe_trigger(self, closest_index: int) -> bool:
        """Process one replay trigger whose closest-matching filter is
        *closest_index*; return True when a squash is licensed.

        Every machine advances: the closest entry records a trigger, all
        other entries count a no-trigger toward re-arming.
        """
        allow = False
        for index, machine in enumerate(self._machines):
            if machine.observe(index == closest_index):
                allow = True
        if allow:
            self.squashes_allowed += 1
        else:
            self.squashes_suppressed += 1
        return allow

    def clone(self) -> "SquashMachineBank":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = SquashMachineBank.__new__(SquashMachineBank)
        twin._machines = [machine.clone() for machine in self._machines]
        twin.squashes_allowed = self.squashes_allowed
        twin.squashes_suppressed = self.squashes_suppressed
        return twin

    def entry_replaced(self, index: int) -> None:
        """A TCAM entry was replaced: its identity history is void, so
        saturate its machine (a fresh entry must re-earn squash rights)."""
        self._machines[index].saturate()

    def state_of(self, index: int) -> int:
        return self._machines[index].state


__all__ = ["SquashMachineBank"]
