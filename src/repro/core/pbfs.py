"""PBFS and PBFS-biased baselines (Section 2.1), plus the PC-indexed filter
table shared with FaultHound's no-clustering ablation.

PBFS keeps one PC-indexed table of bit-mask filters per check kind. A
mismatch in an unchanging bit position triggers an immediate full pipeline
squash (PBFS has no replay, no second-level filter, no LSQ scheme). The
original PBFS uses one-bit sticky counters flash-cleared periodically;
PBFS-biased swaps in the Figure 2(b) biased machine, which is how the paper
isolates the contribution of FaultHound's other mechanisms.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import PBFSConfig, VALUE_MASK
from .actions import CheckAction, CheckKind, CheckResult
from .bitmask_filter import BitmaskFilter
from .screening import ScreeningUnit


class PCIndexedFilterTable:
    """Direct-mapped, PC-indexed table of bit-mask filters.

    This is PBFS's organisation: nearby instructions with similar values
    land in *different* entries purely because their PCs differ — the
    spreading that FaultHound's clustering removes.
    """

    def __init__(self, entries: int, bank_kind: str, changing_states: int = 2):
        self.entries: List[BitmaskFilter] = [
            BitmaskFilter(bank_kind, changing_states) for _ in range(entries)]
        self.bank_kind = bank_kind
        self.lookups = 0
        self.triggers = 0

    def __len__(self) -> int:
        return len(self.entries)

    def check(self, pc: int, value: int) -> tuple:
        """Look up by *pc*, screen *value*; returns (triggered, mismatch_mask).

        The entry is updated (and its previous value replaced) as part of
        the check, mirroring the TCAM's lookup-with-update.
        """
        self.lookups += 1
        value &= VALUE_MASK
        entry = self.entries[pc % len(self.entries)]
        if not entry.valid:
            entry.install(value)
            return False, 0
        mismatch = entry.mismatch_mask(value)
        entry.update(value)
        if mismatch:
            self.triggers += 1
            return True, mismatch
        return False, 0

    def flash_clear(self) -> None:
        """Periodic clear of the sticky counters (Section 2.1)."""
        for entry in self.entries:
            if entry.valid:
                entry.flash_clear()

    def clone(self) -> "PCIndexedFilterTable":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = PCIndexedFilterTable.__new__(PCIndexedFilterTable)
        twin.entries = [entry.clone() for entry in self.entries]
        twin.bank_kind = self.bank_kind
        twin.lookups = self.lookups
        twin.triggers = self.triggers
        return twin


class PBFSUnit(ScreeningUnit):
    """The PBFS baseline: PC-indexed tables, squash on every trigger."""

    def __init__(self, config: PBFSConfig | None = None):
        super().__init__()
        self.config = config or PBFSConfig()
        bank_kind = self.config.counter
        self.name = "pbfs" if bank_kind == "sticky" else f"pbfs-{bank_kind}"
        self.tables: Dict[CheckKind, PCIndexedFilterTable] = {
            kind: PCIndexedFilterTable(self.config.table_entries, bank_kind,
                                       self.config.changing_states)
            for kind in CheckKind
        }
        self._checks_since_clear = 0

    def clone(self) -> "PBFSUnit":
        twin = PBFSUnit.__new__(PBFSUnit)
        self._clone_base_into(twin)
        twin.config = self.config         # frozen dataclass, shared
        twin.name = self.name
        twin.tables = {kind: table.clone()
                       for kind, table in self.tables.items()}
        twin._checks_since_clear = self._checks_since_clear
        return twin

    def _maybe_flash_clear(self) -> None:
        if self.config.counter != "sticky":
            return  # non-sticky counters decay on their own; no clear
        self._checks_since_clear += 1
        if self._checks_since_clear >= self.config.clear_interval:
            self._checks_since_clear = 0
            for table in self.tables.values():
                table.flash_clear()

    def check_at_complete(self, kind: CheckKind, value: int,
                          pc: int) -> CheckResult:
        table = self.tables[kind]
        triggered, _mismatch = table.check(pc, value)
        self._maybe_flash_clear()
        if triggered and not self.replaying:
            # PBFS squashes the pipeline immediately upon detection, hoping
            # the originating instruction has not yet committed.
            return self._record(CheckResult(CheckAction.SQUASH, kind,
                                            triggered=True))
        return self._record(CheckResult(CheckAction.NONE, kind,
                                        triggered=triggered))

    def check_at_commit(self, kind: CheckKind, value: int,
                        pc: int) -> CheckResult:
        # PBFS has no LSQ/commit-time scheme.
        return CheckResult.none(kind)

    @property
    def total_table_lookups(self) -> int:
        return sum(table.lookups for table in self.tables.values())


__all__ = ["PCIndexedFilterTable", "PBFSUnit"]
