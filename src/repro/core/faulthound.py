"""The FaultHound unit: all five mechanisms arbitrated (Section 3).

Per check the decision cascade is exactly the paper's:

1. first-level lookup (inverted TCAM, or PC-indexed table when the
   clustering ablation is disabled) — full match means no trigger;
2. a trigger may be suppressed by the second-level filter (likely false
   positive, Section 3.2);
3. otherwise it causes a full pipeline rollback if the squash state machine
   signals (likely rename fault, Section 3.4);
4. otherwise a predecessor replay (completion checks, Section 3.3) or a
   singleton re-execute (commit/LSQ checks, Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import FaultHoundConfig
from .actions import CheckAction, CheckKind, CheckResult
from .pbfs import PCIndexedFilterTable
from .screening import ScreeningUnit
from .second_level import SecondLevelFilter
from .squash_machine import SquashMachineBank
from .tcam import TCAM


@dataclass
class _Domain:
    """One screening domain (addresses or values): first-level storage plus
    its second-level filter and squash machines."""

    tcam: Optional[TCAM]
    table: Optional[PCIndexedFilterTable]
    second: Optional[SecondLevelFilter]
    squash: Optional[SquashMachineBank]

    @property
    def lookups(self) -> int:
        store = self.tcam if self.tcam is not None else self.table
        return store.lookups if store is not None else 0

    def clone(self) -> "_Domain":
        return _Domain(
            tcam=self.tcam.clone() if self.tcam is not None else None,
            table=self.table.clone() if self.table is not None else None,
            second=self.second.clone() if self.second is not None else None,
            squash=self.squash.clone() if self.squash is not None else None)


class FaultHoundUnit(ScreeningUnit):
    """Screening unit implementing the full FaultHound scheme."""

    name = "faulthound"
    wants_delay_buffer = True

    def __init__(self, config: FaultHoundConfig | None = None):
        super().__init__()
        self.config = config or FaultHoundConfig()
        self.wants_commit_checks = self.config.lsq_check
        self.addresses = self._make_domain()
        self.values = self._make_domain()
        # Fine-grained trigger accounting for Figure 11 / Section 5.6.
        self.second_level_suppressions = 0
        self.squash_triggers = 0
        self.replay_triggers = 0
        self.singleton_triggers = 0

    def clone(self) -> "FaultHoundUnit":
        twin = FaultHoundUnit.__new__(FaultHoundUnit)
        self._clone_base_into(twin)
        twin.config = self.config         # frozen dataclass, shared
        twin.wants_commit_checks = self.wants_commit_checks
        twin.addresses = self.addresses.clone()
        twin.values = self.values.clone()
        twin.second_level_suppressions = self.second_level_suppressions
        twin.squash_triggers = self.squash_triggers
        twin.replay_triggers = self.replay_triggers
        twin.singleton_triggers = self.singleton_triggers
        return twin

    def _make_domain(self) -> _Domain:
        cfg = self.config
        if cfg.clustering:
            tcam = TCAM(entries=cfg.tcam_entries,
                        loosen_threshold=cfg.loosen_threshold,
                        bank_kind="biased",
                        changing_states=cfg.first_level_changing_states)
            table = None
            squash = (SquashMachineBank(cfg.tcam_entries, cfg.squash_states)
                      if cfg.squash_detection else None)
        else:
            # Ablation: PBFS-style PC-indexed organisation with the biased
            # machines. Rename-fault detection keys on closest-match
            # identity, which only exists in the inverted organisation.
            tcam = None
            table = PCIndexedFilterTable(2048, "biased",
                                         cfg.first_level_changing_states)
            squash = None
        second = (SecondLevelFilter(cfg.second_level_states, cfg.value_bits)
                  if cfg.second_level else None)
        return _Domain(tcam=tcam, table=table, second=second, squash=squash)

    def _domain(self, kind: CheckKind) -> _Domain:
        return self.addresses if kind.uses_address_table else self.values

    def _first_level(self, domain: _Domain, value: int, pc: int):
        """Run the first-level lookup; returns (triggered, mismatch_mask,
        closest_index_or_None)."""
        if domain.tcam is not None:
            res = domain.tcam.lookup(value)
            if res.replaced_index is not None and domain.squash is not None:
                domain.squash.entry_replaced(res.replaced_index)
            return res.triggered, res.mismatch_mask, res.closest_index
        triggered, mismatch = domain.table.check(pc, value)
        return triggered, mismatch, None

    def _arbitrate(self, domain: _Domain, mismatch_mask: int,
                   closest: Optional[int], at_commit: bool) -> CheckAction:
        """Apply the Section 3 decision cascade to a raw trigger."""
        allowed = True
        if domain.second is not None:
            allowed = bool(domain.second.observe_trigger(mismatch_mask))
        squash = False
        if (not at_commit and domain.squash is not None
                and closest is not None):
            # Squash machines track closest-match identity across *all*
            # replay triggers, suppressed or not (Section 3.4).
            squash = domain.squash.observe_trigger(closest)
        if not allowed:
            self.second_level_suppressions += 1
            return CheckAction.SUPPRESSED
        if at_commit:
            self.singleton_triggers += 1
            return CheckAction.SINGLETON
        if squash:
            self.squash_triggers += 1
            return CheckAction.SQUASH
        if self.config.full_rollback_on_trigger:
            # Fig 12 (middle) ablation: replay replaced by a full rollback.
            self.squash_triggers += 1
            return CheckAction.SQUASH
        self.replay_triggers += 1
        return CheckAction.REPLAY

    def check_at_complete(self, kind: CheckKind, value: int,
                          pc: int) -> CheckResult:
        domain = self._domain(kind)
        triggered, mismatch, closest = self._first_level(domain, value, pc)
        if self.replaying or not triggered:
            # During replay the filters keep learning but triggers are
            # ignored (Section 3.3).
            return self._record(CheckResult(CheckAction.NONE, kind,
                                            triggered=triggered))
        action = self._arbitrate(domain, mismatch, closest, at_commit=False)
        return self._record(CheckResult(action, kind, triggered=True))

    def check_at_commit(self, kind: CheckKind, value: int,
                        pc: int) -> CheckResult:
        if not self.config.lsq_check:
            return CheckResult.none(kind)
        domain = self._domain(kind)
        triggered, mismatch, _closest = self._first_level(domain, value, pc)
        if self.replaying or not triggered:
            return self._record(CheckResult(CheckAction.NONE, kind,
                                            triggered=triggered))
        action = self._arbitrate(domain, mismatch, None, at_commit=True)
        return self._record(CheckResult(action, kind, triggered=True))

    @property
    def total_table_lookups(self) -> int:
        return self.addresses.lookups + self.values.lookups


__all__ = ["FaultHoundUnit"]
