"""Banks of 64 per-bit-position state machines.

A bit-mask filter needs one machine per bit of a 64-bit value. Because a
TCAM lookup updates exactly one filter per check and checks happen for a
quarter of all instructions, the bank update is the hottest loop in the
whole reproduction — so the default machines are implemented *bit-parallel*
as 64-bit bitplanes (pure Python int bitwise ops), with scalar reference
banks kept for arbitrary state counts and for the equivalence property
tests.

Bank interface (duck-typed):

- ``changing_mask`` — bit i set when machine i is in a changing state
  (wildcard for the match, Figure 1);
- ``observe(change_mask) -> alarm_mask`` — advance every machine with its
  per-bit change/no-change input; returns the bits that alarmed (changed
  while "unchanging");
- ``reset()`` — all machines back to U (a fresh, fully "unchanging" filter).
"""

from __future__ import annotations

from typing import Callable, List

from ..config import VALUE_MASK
from .state_machines import BiasedMachine, StandardCounter, StickyCounter


class BitParallelBiasedBank:
    """64 Figure-2(b) biased machines (2 changing states) as two bitplanes.

    State encoding per bit: U=00, C1=01, C2=10 (planes ``b1 b0``). The
    transition function vectorises to::

        alarm   = change & ~b1 & ~b0     # change while in U
        next_b1 = change                 # any change jumps to C2
        next_b0 = ~change & b1           # C2 decays to C1 on no-change
    """

    __slots__ = ("b1", "b0")

    def __init__(self) -> None:
        self.b1 = 0
        self.b0 = 0

    @property
    def changing_mask(self) -> int:
        return self.b1 | self.b0

    def observe(self, change_mask: int) -> int:
        change_mask &= VALUE_MASK
        alarm = change_mask & ~(self.b1 | self.b0) & VALUE_MASK
        self.b0 = ~change_mask & self.b1 & VALUE_MASK
        self.b1 = change_mask
        return alarm

    def reset(self) -> None:
        self.b1 = self.b0 = 0

    def flash_clear(self) -> None:
        """Periodic clear: every machine back to "unchanging" (only
        meaningful for PBFS-style operation, but harmless here)."""
        self.reset()

    def clone(self) -> "BitParallelBiasedBank":
        twin = BitParallelBiasedBank()
        twin.b1 = self.b1
        twin.b0 = self.b0
        return twin


class BitParallelStickyBank:
    """64 PBFS sticky one-bit counters as a single "changing" bitplane."""

    __slots__ = ("changing",)

    def __init__(self) -> None:
        self.changing = 0

    @property
    def changing_mask(self) -> int:
        return self.changing

    def observe(self, change_mask: int) -> int:
        change_mask &= VALUE_MASK
        alarm = change_mask & ~self.changing & VALUE_MASK
        self.changing |= change_mask
        return alarm

    def reset(self) -> None:
        self.changing = 0

    def flash_clear(self) -> None:
        """PBFS's periodic clear: every counter back to "unchanging"."""
        self.changing = 0

    def clone(self) -> "BitParallelStickyBank":
        twin = BitParallelStickyBank()
        twin.changing = self.changing
        return twin


class ArrayBank:
    """Reference bank: 64 explicit machine objects of any class.

    Used for non-default state counts (e.g. the 3-bit-machine coverage
    ablation quoted in Section 3) and as the oracle in the bit-parallel
    equivalence property tests.
    """

    __slots__ = ("machines",)

    def __init__(self, machine_factory: Callable[[], object],
                 n_bits: int = 64) -> None:
        self.machines: List = [machine_factory() for _ in range(n_bits)]

    @property
    def changing_mask(self) -> int:
        mask = 0
        for bit, machine in enumerate(self.machines):
            if machine.is_changing:
                mask |= 1 << bit
        return mask

    def observe(self, change_mask: int) -> int:
        alarm = 0
        for bit, machine in enumerate(self.machines):
            if machine.observe(bool((change_mask >> bit) & 1)):
                alarm |= 1 << bit
        return alarm

    def reset(self) -> None:
        for machine in self.machines:
            if isinstance(machine, StickyCounter):
                machine.flash_clear()
            else:
                machine.state = 0

    def flash_clear(self) -> None:
        self.reset()

    def clone(self) -> "ArrayBank":
        twin = ArrayBank.__new__(ArrayBank)
        twin.machines = [machine.clone() for machine in self.machines]
        return twin


def make_bank(kind: str = "biased", changing_states: int = 2):
    """Factory for the filter banks the experiments use.

    ``kind`` is one of ``"biased"`` (Fig 2b), ``"sticky"`` (PBFS) or
    ``"standard"`` (Fig 2a). The bit-parallel fast paths cover the default
    configurations; other state counts fall back to :class:`ArrayBank`.
    """
    if kind == "biased":
        if changing_states == 2:
            return BitParallelBiasedBank()
        return ArrayBank(lambda: BiasedMachine(changing_states))
    if kind == "sticky":
        return BitParallelStickyBank()
    if kind == "standard":
        return ArrayBank(lambda: StandardCounter(changing_states))
    raise ValueError(f"unknown bank kind {kind!r}")


__all__ = [
    "BitParallelBiasedBank",
    "BitParallelStickyBank",
    "ArrayBank",
    "make_bank",
]
