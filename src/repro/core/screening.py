"""Base interface every fault-screening unit implements.

The pipeline is scheme-agnostic: it calls ``check_at_complete`` when a load
or store finishes executing and ``check_at_commit`` when one reaches the
head of the ROB, then obeys the returned :class:`CheckAction`. FaultHound,
PBFS and the do-nothing baseline all implement this interface.
"""

from __future__ import annotations

from collections import Counter

from .actions import CheckAction, CheckKind, CheckResult


class ScreeningUnit:
    """Abstract screening unit with shared bookkeeping."""

    name = "abstract"
    #: Whether the pipeline should operate the completed-instruction delay
    #: buffer (FaultHound hardware; PBFS and the baseline do without).
    wants_delay_buffer = False
    #: Whether loads/stores must be re-checked at commit (the LSQ scheme).
    wants_commit_checks = False

    def __init__(self) -> None:
        self.checks = 0
        self.action_counts: Counter = Counter()
        #: True while the pipeline is re-executing instructions due to a
        #: screening-initiated replay/rollback: filters keep learning but
        #: triggers must not fire again (Section 3.3: "any triggers during
        #: replay are ignored").
        self.replaying = False

    # -- interface -------------------------------------------------------
    def check_at_complete(self, kind: CheckKind, value: int,
                          pc: int) -> CheckResult:
        """Screen *value* when its load/store completes execution."""
        raise NotImplementedError

    def check_at_commit(self, kind: CheckKind, value: int,
                        pc: int) -> CheckResult:
        """Screen *value* when its load/store reaches commit (LSQ check)."""
        raise NotImplementedError

    def next_event_cycle(self, now: int):
        """Event-skip contract (see PipelineCore.quiescent_until): the
        earliest future cycle at which this unit can change pipeline
        state unprompted, or None. Every in-tree unit acts only when
        consulted at complete/commit, so the base answers None; a future
        unit with autonomous timing (a periodic flash-clear modelled in
        cycles, say) overrides this."""
        return None

    def clone(self) -> "ScreeningUnit":
        """An independent copy carrying all learned filter state — the
        checkpoint protocol's fork point for screening hardware.

        The in-tree units override this with purpose-built copies; the
        base implementation falls back to ``copy.deepcopy`` so external
        subclasses stay correct (merely slower) without implementing it.
        """
        import copy
        return copy.deepcopy(self)

    def _clone_base_into(self, twin: "ScreeningUnit") -> None:
        """Transfer the shared bookkeeping onto a freshly built *twin*."""
        twin.checks = self.checks
        twin.action_counts = Counter(self.action_counts)
        twin.replaying = self.replaying

    # -- shared helpers --------------------------------------------------
    def _record(self, result: CheckResult) -> CheckResult:
        self.checks += 1
        self.action_counts[result.action] += 1
        return result

    def count(self, action: CheckAction) -> int:
        return self.action_counts[action]

    @property
    def trigger_count(self) -> int:
        return sum(count for action, count in self.action_counts.items()
                   if action is not CheckAction.NONE)


class NullScreeningUnit(ScreeningUnit):
    """The no-fault-tolerance baseline: every check is a no-op."""

    name = "baseline"

    def check_at_complete(self, kind: CheckKind, value: int,
                          pc: int) -> CheckResult:
        return self._record(CheckResult.none(kind))

    def check_at_commit(self, kind: CheckKind, value: int,
                        pc: int) -> CheckResult:
        return self._record(CheckResult.none(kind))

    def clone(self) -> "NullScreeningUnit":
        twin = NullScreeningUnit()
        self._clone_base_into(twin)
        return twin


__all__ = ["ScreeningUnit", "NullScreeningUnit"]
