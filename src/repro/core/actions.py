"""Check kinds, resulting actions and the per-check result record."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .tcam import LookupResult


class CheckKind(enum.Enum):
    """What value a screening check inspects (Section 2.1: PBFS and
    FaultHound both check load addresses, store addresses, store values)."""

    LOAD_ADDR = "load_addr"
    STORE_ADDR = "store_addr"
    STORE_VALUE = "store_value"

    @property
    def uses_address_table(self) -> bool:
        """Addresses and values get separate TCAMs (Section 3.1: mixing
        them weakens the filters)."""
        return self in (CheckKind.LOAD_ADDR, CheckKind.STORE_ADDR)


class CheckAction(enum.Enum):
    """What the screening unit asks the pipeline to do."""

    #: Value inside its neighbourhood — nothing to do.
    NONE = "none"
    #: First-level trigger suppressed by the second-level filter.
    SUPPRESSED = "suppressed"
    #: Light-weight predecessor replay (Section 3.3).
    REPLAY = "replay"
    #: Full pipeline rollback (PBFS always; FaultHound on rename-fault
    #: suspicion, Section 3.4).
    SQUASH = "squash"
    #: Singleton re-execute of a load/store at commit (Section 3.5).
    SINGLETON = "singleton"

    @property
    def is_trigger(self) -> bool:
        return self is not CheckAction.NONE


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one screening check."""

    action: CheckAction
    kind: CheckKind
    #: Raw first-level trigger state, even when the action was suppressed.
    triggered: bool = False
    lookup: Optional[LookupResult] = None

    @staticmethod
    def none(kind: CheckKind) -> "CheckResult":
        return CheckResult(CheckAction.NONE, kind)


__all__ = ["CheckKind", "CheckAction", "CheckResult"]
