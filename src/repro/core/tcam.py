"""Counting TCAM with inverted (value-indexed) organisation (Section 3.1).

Lookups search every filter for the nearest neighbour of the incoming
value, counting mismatches only in "unchanging" bit positions. A full match
updates the matching filter in place; a near miss (at most
``loosen_threshold`` mismatching bits) *loosens* the closest filter; a far
miss *replaces* the LRU filter with a fresh one. The paper points out this
is not a standard TCAM — it needs mismatch bit counts — and cites counting
TCAMs for nearest-neighbour search [25].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import VALUE_MASK
from ..errors import ConfigurationError
from .bitmask_filter import BitmaskFilter


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one TCAM lookup-and-update."""

    #: True when no filter fully matched — a new neighbourhood or a fault.
    triggered: bool
    #: Index of the closest-matching filter (the squash machines key on its
    #: identity). For a cold install this is the installed entry.
    closest_index: int
    #: Mismatching unchanging bit positions of the closest filter, before
    #: the update. Zero on a full match or cold install.
    mismatch_mask: int
    #: popcount of ``mismatch_mask``.
    mismatch_count: int
    #: Index of the entry that was replaced by a fresh filter, when the
    #: mismatch exceeded the loosen threshold; ``None`` otherwise.
    replaced_index: Optional[int] = None
    #: True when the value was installed into a never-used entry (cold
    #: start; not counted as a trigger).
    cold_install: bool = False


class TCAM:
    """A bank of :class:`BitmaskFilter` entries with LRU replacement."""

    def __init__(self, entries: int = 32, loosen_threshold: int = 4,
                 bank_kind: str = "biased", changing_states: int = 2):
        if entries <= 0:
            raise ConfigurationError("TCAM needs at least one entry")
        self.entries: List[BitmaskFilter] = [
            BitmaskFilter(bank_kind, changing_states) for _ in range(entries)]
        self.loosen_threshold = loosen_threshold
        # LRU order of entry indices; front == most recently used.
        self._lru: List[int] = list(range(entries))
        self.lookups = 0
        self.triggers = 0

    def __len__(self) -> int:
        return len(self.entries)

    def _touch(self, index: int) -> None:
        self._lru.remove(index)
        self._lru.insert(0, index)

    def lookup(self, value: int) -> LookupResult:
        """Search, then update/loosen/replace as a side effect (the paper
        folds the update into the lookup)."""
        value &= VALUE_MASK
        self.lookups += 1

        closest = -1
        best_mask = 0
        best_count = 65
        for index, entry in enumerate(self.entries):
            if not entry.valid:
                continue
            mask = entry.mismatch_mask(value)
            count = mask.bit_count()
            if count < best_count:
                closest, best_mask, best_count = index, mask, count
                if count == 0:
                    break

        if closest >= 0 and best_count == 0:
            # Full match: value is inside its neighbourhood.
            self.entries[closest].update(value)
            self._touch(closest)
            return LookupResult(False, closest, 0, 0)

        if closest < 0:
            # Cold table: install without triggering.
            index = self._lru[-1]
            self.entries[index].install(value)
            self._touch(index)
            return LookupResult(False, index, 0, 0, cold_install=True)

        self.triggers += 1
        if best_count <= self.loosen_threshold:
            # Loosen the closest filter to admit the new value (Figure 3b).
            self.entries[closest].update(value)
            self._touch(closest)
            return LookupResult(True, closest, best_mask, best_count)

        # Too far from every filter: replace the LRU entry. Prefer a
        # never-used entry if one remains.
        victim = next((i for i in reversed(self._lru)
                       if not self.entries[i].valid), self._lru[-1])
        self.entries[victim].install(value)
        self._touch(victim)
        return LookupResult(True, closest, best_mask, best_count,
                            replaced_index=victim)

    def clone(self) -> "TCAM":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = TCAM.__new__(TCAM)
        twin.entries = [entry.clone() for entry in self.entries]
        twin.loosen_threshold = self.loosen_threshold
        twin._lru = list(self._lru)
        twin.lookups = self.lookups
        twin.triggers = self.triggers
        return twin

    def probe(self, value: int) -> int:
        """Side-effect-free nearest mismatch count (65 when table empty)."""
        value &= VALUE_MASK
        best = 65
        for entry in self.entries:
            if entry.valid:
                best = min(best, entry.mismatch_count(value))
                if best == 0:
                    break
        return best

    @property
    def valid_entries(self) -> int:
        return sum(1 for e in self.entries if e.valid)

    @property
    def trigger_rate(self) -> float:
        return self.triggers / self.lookups if self.lookups else 0.0

    def flash_clear(self) -> None:
        for entry in self.entries:
            if entry.valid:
                entry.flash_clear()


__all__ = ["LookupResult", "TCAM"]
