"""The bit-mask filter: per-bit machines plus the previous value (Figure 1).

Together the bank and the previous value encode a ternary word — for each
bit position "unchanging 0", "unchanging 1" or "changing wildcard" — which
defines the value subspace (neighbourhood) the filter accepts.
"""

from __future__ import annotations

from ..config import VALUE_MASK
from .filter_bank import make_bank


class BitmaskFilter:
    """One filter entry: a 64-machine bank and the previous value."""

    __slots__ = ("bank", "previous", "valid")

    def __init__(self, bank_kind: str = "biased", changing_states: int = 2):
        self.bank = make_bank(bank_kind, changing_states)
        self.previous = 0
        self.valid = False

    @property
    def changing_mask(self) -> int:
        return self.bank.changing_mask

    def mismatch_mask(self, value: int) -> int:
        """Bits where *value* differs from the previous value in an
        *unchanging* position — the trigger condition (Figure 3)."""
        return ~self.changing_mask & (value ^ self.previous) & VALUE_MASK

    def mismatch_count(self, value: int) -> int:
        return self.mismatch_mask(value).bit_count()

    def matches(self, value: int) -> bool:
        """True when *value* lies inside the filter's value subspace."""
        return self.valid and self.mismatch_mask(value) == 0

    def install(self, value: int) -> None:
        """(Re)initialise as a fresh filter: all positions "unchanging"
        with *value* as the previous value (Section 3.1 replacement)."""
        self.bank.reset()
        self.previous = value & VALUE_MASK
        self.valid = True

    def update(self, value: int) -> int:
        """Advance every per-bit machine with *value* and make it the new
        previous value; returns the alarm mask.

        This single operation covers both the full-match update and the
        "loosen" update of Figure 3: bit positions where *value* differs see
        a change input (alarming if they were "unchanging", which is what
        the TCAM reported as the trigger), matching positions see no-change.
        """
        value &= VALUE_MASK
        alarm = self.bank.observe(value ^ self.previous)
        self.previous = value
        return alarm

    def flash_clear(self) -> None:
        """PBFS periodic clear: all counters back to "unchanging". The
        previous value is retained (only the counters are sticky)."""
        self.bank.flash_clear()

    def clone(self) -> "BitmaskFilter":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = BitmaskFilter.__new__(BitmaskFilter)
        twin.bank = self.bank.clone()
        twin.previous = self.previous
        twin.valid = self.valid
        return twin

    def ternary_repr(self) -> str:
        """Human-readable 64-char ternary word, MSB first: ``0``/``1`` for
        unchanging bits of the previous value, ``x`` for wildcards."""
        changing = self.changing_mask
        chars = []
        for bit in range(63, -1, -1):
            if (changing >> bit) & 1:
                chars.append("x")
            else:
                chars.append(str((self.previous >> bit) & 1))
        return "".join(chars)

    def subspace_size_log2(self) -> int:
        """log2 of the number of values the filter currently accepts."""
        return self.changing_mask.bit_count()


__all__ = ["BitmaskFilter"]
