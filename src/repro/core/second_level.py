"""Second-level filter: masking delinquent bit positions (Section 3.2).

One instance exists per TCAM. For each of the 64 bit positions it keeps an
8-state biased machine that remembers whether *any* first-level filter
reported a non-match in that position during any of the last several replay
triggers. A newly-alarming position (7 consecutive trigger events without
that position alarming) is allowed through — likely a fault; a recently
delinquent position is suppressed — likely a false positive.
"""

from __future__ import annotations

from typing import List

from ..config import VALUE_MASK
from .state_machines import BiasedMachine


class SecondLevelFilter:
    """64 per-bit-position biased machines, advanced on every trigger."""

    def __init__(self, num_states: int = 8, value_bits: int = 64):
        if num_states < 2:
            raise ValueError("second-level filter needs >= 2 states")
        self._machines: List[BiasedMachine] = [
            BiasedMachine(num_states - 1) for _ in range(value_bits)]
        self.observed_triggers = 0
        self.suppressed_triggers = 0

    def observe_trigger(self, mismatch_mask: int) -> int:
        """Process one replay trigger whose non-matching positions are
        *mismatch_mask*; return the subset of positions allowed to alarm.

        Every machine advances: alarming positions record the non-match
        (even when suppressed — "though the state machine transitions to
        record the non-match"), quiet positions count a no-alarm toward
        re-arming.
        """
        mismatch_mask &= VALUE_MASK
        allowed = 0
        bit = 0
        mask = mismatch_mask
        for machine in self._machines:
            if machine.observe(bool(mask & 1)):
                allowed |= 1 << bit
            mask >>= 1
            bit += 1
        self.observed_triggers += 1
        if mismatch_mask and not allowed:
            self.suppressed_triggers += 1
        return allowed

    def clone(self) -> "SecondLevelFilter":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = SecondLevelFilter.__new__(SecondLevelFilter)
        twin._machines = [machine.clone() for machine in self._machines]
        twin.observed_triggers = self.observed_triggers
        twin.suppressed_triggers = self.suppressed_triggers
        return twin

    def allows(self, mismatch_mask: int) -> bool:
        """Side-effect-free: would any position in *mismatch_mask* alarm?"""
        mismatch_mask &= VALUE_MASK
        bit = 0
        while mismatch_mask:
            if mismatch_mask & 1 and self._machines[bit].state == 0:
                return True
            mismatch_mask >>= 1
            bit += 1
        return False

    @property
    def delinquent_mask(self) -> int:
        """Positions currently suppressed (machine not in the allow state)."""
        mask = 0
        for bit, machine in enumerate(self._machines):
            if machine.state:
                mask |= 1 << bit
        return mask


__all__ = ["SecondLevelFilter"]
