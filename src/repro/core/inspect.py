"""Human-readable views of a screening unit's internal state.

Renders the learned filters as ternary words (Figure 1's notation), the
second-level filter's delinquent positions, and the squash machines'
armed/suppressed status — the views you want when asking "why did this
trigger fire (or not fire)?".
"""

from __future__ import annotations

from typing import List, Optional

from .faulthound import FaultHoundUnit, _Domain
from .pbfs import PBFSUnit
from .tcam import TCAM


def render_tcam(tcam: TCAM, tail_bits: int = 24,
                limit: Optional[int] = None) -> str:
    """One line per valid filter: ternary word tail, wildcard count, and
    the previous value."""
    lines = []
    shown = 0
    for index, entry in enumerate(tcam.entries):
        if not entry.valid:
            continue
        if limit is not None and shown >= limit:
            lines.append(f"  ... ({tcam.valid_entries - shown} more)")
            break
        shown += 1
        word = entry.ternary_repr()[-tail_bits:]
        lines.append(
            f"  [{index:2d}] ...{word}  wildcards={entry.subspace_size_log2():2d}"
            f"  prev={entry.previous:#x}")
    if not lines:
        return "  (no valid filters)"
    return "\n".join(lines)


def render_domain(domain: _Domain, label: str) -> str:
    """Render one screening domain (first level + second level + squash)."""
    lines = [f"{label}:"]
    if domain.tcam is not None:
        lines.append(f"  first level: {domain.tcam.valid_entries}"
                     f"/{len(domain.tcam)} filters, "
                     f"{domain.tcam.triggers} triggers "
                     f"/ {domain.tcam.lookups} lookups")
        lines.append(render_tcam(domain.tcam, limit=8))
    elif domain.table is not None:
        lines.append(f"  first level: PC-indexed table, "
                     f"{domain.table.triggers} triggers "
                     f"/ {domain.table.lookups} lookups")
    if domain.second is not None:
        delinquent = [bit for bit in range(64)
                      if domain.second.delinquent_mask >> bit & 1]
        lines.append(f"  second level: delinquent bits {delinquent} "
                     f"(suppressed {domain.second.suppressed_triggers}"
                     f"/{domain.second.observed_triggers} triggers)")
    if domain.squash is not None:
        armed = [i for i in range(len(domain.squash))
                 if domain.squash.state_of(i) == 0]
        lines.append(f"  squash machines: {len(armed)} armed "
                     f"(allowed {domain.squash.squashes_allowed}, "
                     f"suppressed {domain.squash.squashes_suppressed})")
    return "\n".join(lines)


def render_unit(unit) -> str:
    """Full dump of a screening unit's learned state."""
    header = (f"scheme: {unit.name}  checks={unit.checks} "
              f"triggers={unit.trigger_count}")
    if isinstance(unit, FaultHoundUnit):
        return "\n".join([
            header,
            render_domain(unit.addresses, "address domain"),
            render_domain(unit.values, "value domain"),
        ])
    if isinstance(unit, PBFSUnit):
        lines = [header]
        for kind, table in unit.tables.items():
            lines.append(f"  {kind.value}: {table.triggers} triggers "
                         f"/ {table.lookups} lookups")
        return "\n".join(lines)
    return header


__all__ = ["render_tcam", "render_domain", "render_unit"]
