"""Per-bit state machines (paper Figure 2 and Sections 3.2/3.4).

Three machine shapes appear in the paper:

- :class:`StickyCounter` — PBFS's one-bit counter: saturates at "changing"
  on the first change and stays there until a periodic flash clear.
- :class:`StandardCounter` — Figure 2(a): a conventional saturating counter
  with direct to-and-fro transitions between "unchanging" (U) and the first
  changing state (C1).
- :class:`BiasedMachine` — Figure 2(b): a change jumps straight to the
  deepest changing state; reaching U requires ``num_changing_states``
  consecutive no-changes. The same shape, with 7 changing states, is reused
  by the second-level filter ("7 consecutive no-alarms before allowing an
  alarm") and the squash machines ("7 consecutive no-triggers").

All machines share one convention: ``observe(event)`` advances the machine
and returns True exactly when the event arrived while the machine was in
the U state — a change out of "unchanging" (first level), an alarm out of
"quiet" (second level), a trigger out of "stable identity" (squash).
"""

from __future__ import annotations


class StickyCounter:
    """PBFS's one-bit sticky counter (Section 2.1)."""

    __slots__ = ("changing",)

    def __init__(self) -> None:
        self.changing = False

    def observe(self, changed: bool) -> bool:
        """Advance on one value observation; return True on an alarm."""
        if not changed:
            return False
        alarm = not self.changing
        self.changing = True
        return alarm

    def flash_clear(self) -> None:
        """Periodic clear back to "unchanging" (the only way out)."""
        self.changing = False

    def clone(self) -> "StickyCounter":
        twin = StickyCounter()
        twin.changing = self.changing
        return twin

    @property
    def is_changing(self) -> bool:
        return self.changing

    @property
    def state(self) -> int:
        return 1 if self.changing else 0


class StandardCounter:
    """Figure 2(a): symmetric saturating counter, U <-> C1 <-> ... <-> Cn."""

    __slots__ = ("state", "num_changing_states")

    def __init__(self, num_changing_states: int = 3) -> None:
        if num_changing_states < 1:
            raise ValueError("need at least one changing state")
        self.num_changing_states = num_changing_states
        self.state = 0  # 0 == U; 1..n == C1..Cn

    def observe(self, changed: bool) -> bool:
        if changed:
            alarm = self.state == 0
            if self.state < self.num_changing_states:
                self.state += 1
            return alarm
        if self.state:
            self.state -= 1
        return False

    def clone(self) -> "StandardCounter":
        twin = StandardCounter(self.num_changing_states)
        twin.state = self.state
        return twin

    @property
    def is_changing(self) -> bool:
        return self.state != 0


class BiasedMachine:
    """Figure 2(b): biased machine that re-enters U slowly.

    A change (event) jumps to the deepest changing state; each no-change
    decrements toward U. With ``num_changing_states=2`` this is exactly
    Figure 2(b): two consecutive no-changes after a change to reach U, a
    single change to leave it. With ``num_changing_states=7`` (8 states) it
    is the second-level / squash machine of Sections 3.2 and 3.4.
    """

    __slots__ = ("state", "num_changing_states")

    def __init__(self, num_changing_states: int = 2) -> None:
        if num_changing_states < 1:
            raise ValueError("need at least one changing state")
        self.num_changing_states = num_changing_states
        self.state = 0

    def observe(self, changed: bool) -> bool:
        if changed:
            alarm = self.state == 0
            self.state = self.num_changing_states
            return alarm
        if self.state:
            self.state -= 1
        return False

    def saturate(self) -> None:
        """Force the deepest changing state (used when a squash machine's
        TCAM entry is replaced: the new filter's identity is unproven)."""
        self.state = self.num_changing_states

    def clone(self) -> "BiasedMachine":
        twin = BiasedMachine(self.num_changing_states)
        twin.state = self.state
        return twin

    @property
    def is_changing(self) -> bool:
        return self.state != 0


__all__ = ["StickyCounter", "StandardCounter", "BiasedMachine"]
