"""Hardware and FaultHound configuration (paper Table 2).

:class:`HardwareConfig` mirrors the paper's Table 2 ("Hardware parameters")
and adds the handful of timing knobs the paper leaves implicit (bypass depth,
memory latency, rollback penalties). :class:`FaultHoundConfig` collects the
filter parameters from Sections 3.1-3.5. Both are plain frozen dataclasses;
experiments construct variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .errors import ConfigurationError

#: Width of every data value, address and filter in the system (bits).
VALUE_BITS = 64

#: Mask for 64-bit wrap-around arithmetic.
VALUE_MASK = (1 << VALUE_BITS) - 1


@dataclass(frozen=True)
class FaultHoundConfig:
    """Parameters of the FaultHound unit (paper Sections 3.1-3.5, Table 2).

    The defaults are the paper's evaluated configuration: two 32-entry
    64-bit TCAMs (addresses and values), a loosen threshold of 4 mismatching
    bits, an 8-state second-level filter per TCAM requiring 7 consecutive
    no-alarms, and an 8-state squash machine per TCAM entry requiring 7
    consecutive no-triggers.
    """

    tcam_entries: int = 32
    value_bits: int = VALUE_BITS
    #: Maximum mismatching-bit count for loosening the closest filter
    #: instead of replacing one (Section 3.1; "e.g., 4").
    loosen_threshold: int = 4
    #: Number of "changing" states in the first-level biased machine
    #: (Fig 2b uses 2: two consecutive no-changes to re-enter "unchanging").
    first_level_changing_states: int = 2
    #: States in the per-bit second-level filter machine (Section 3.2).
    second_level_states: int = 8
    #: States in the per-entry squash machine (Section 3.4).
    squash_states: int = 8
    #: Enable the inverted (value-indexed TCAM) organisation. Disabling
    #: degenerates to one filter per lookup hash bucket, used by ablations.
    clustering: bool = True
    #: Enable the second-level delinquent-bit filter.
    second_level: bool = True
    #: Enable the squash (rename-fault) machinery.
    squash_detection: bool = True
    #: Enable the commit-time LSQ check + singleton re-execute.
    lsq_check: bool = True
    #: Replace predecessor replay with a full rollback (Fig 12 middle).
    full_rollback_on_trigger: bool = False

    def __post_init__(self) -> None:
        if self.tcam_entries <= 0:
            raise ConfigurationError("tcam_entries must be positive")
        if not 0 <= self.loosen_threshold <= self.value_bits:
            raise ConfigurationError("loosen_threshold out of range")
        if self.first_level_changing_states < 1:
            raise ConfigurationError("need at least one changing state")
        if self.second_level_states < 2 or self.squash_states < 2:
            raise ConfigurationError("biased machines need >= 2 states")

    def __deepcopy__(self, memo) -> "FaultHoundConfig":
        return self    # frozen: shared by tandem-classifier core forks


@dataclass(frozen=True)
class PBFSConfig:
    """Parameters of the PBFS baseline (paper Section 2.1).

    The paper evaluates PBFS with one-bit sticky counters and 2K-entry
    PC-indexed filter tables, flash-cleared periodically. ``biased=True``
    selects the PBFS-biased variant which swaps the sticky counters for the
    Fig 2b biased state machine.
    """

    table_entries: int = 2048
    value_bits: int = VALUE_BITS
    #: Shorthand for ``counter="biased"`` (the PBFS-biased variant).
    biased: bool = False
    #: Per-bit counter flavour: "sticky" (the original PBFS one-bit
    #: counter), "standard" (the conventional Fig 2a counter — Section
    #: 2.2's strawman whose coverage rises but whose false positives
    #: explode), or "biased" (Fig 2b). Empty string resolves from
    #: ``biased``.
    counter: str = ""
    #: Number of changing states for non-sticky counters (2 == Fig 2b).
    changing_states: int = 2
    #: Flash-clear period for sticky counters, in checks per table.
    clear_interval: int = 10_000

    def __post_init__(self) -> None:
        if self.table_entries <= 0:
            raise ConfigurationError("table_entries must be positive")
        if self.clear_interval <= 0:
            raise ConfigurationError("clear_interval must be positive")
        resolved = self.counter or ("biased" if self.biased else "sticky")
        if resolved not in ("sticky", "standard", "biased"):
            raise ConfigurationError(f"unknown counter kind {resolved!r}")
        if self.biased and self.counter not in ("", "biased"):
            raise ConfigurationError("biased=True conflicts with counter=")
        object.__setattr__(self, "counter", resolved)
        object.__setattr__(self, "biased", resolved == "biased")

    def __deepcopy__(self, memo) -> "PBFSConfig":
        return self    # frozen: shared by tandem-classifier core forks


@dataclass(frozen=True)
class HardwareConfig:
    """Core and cache parameters (paper Table 2) plus implicit timing knobs.

    The paper simulates 8 cores; fault injection and the FaultHound
    mechanisms are per-core, so the reproduction models one core with
    ``smt_contexts`` hardware threads and scales workloads accordingly.
    """

    # --- Table 2, processor ---
    smt_contexts: int = 2
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    num_alus: int = 4
    num_muls: int = 2
    num_fpus: int = 2
    issue_queue_size: int = 40
    rob_size: int = 250
    int_arch_regs: int = 32          # logical registers visible to the ISA
    #: Unified physical register file. The paper provisions 160 INT + 64
    #: FP; our ISA has one 64-bit file, so it gets the sum — otherwise the
    #: free list, not the ROB, becomes the scheduling window bound.
    phys_regs: int = 224
    lsq_size: int = 64
    delay_buffer_size: int = 7       # Section 3.3 / Table 2

    # --- Table 2, caches ---
    l1d_size_kb: int = 32
    l1d_assoc: int = 2
    l1d_latency: int = 3
    l2_size_kb: int = 2048
    l2_assoc: int = 4
    l2_latency: int = 20
    line_bytes: int = 64

    # --- implicit timing knobs (not in Table 2, standard values) ---
    memory_latency: int = 200
    #: Stride-prefetch degree for the data hierarchy; 0 disables (the
    #: paper's Table 2 machine has no prefetcher — this knob exists for
    #: sensitivity studies only).
    prefetch_degree: int = 0
    branch_mispredict_penalty: int = 12
    #: Cycles after completion during which a value is available on the
    #: bypass network; older values must be read from the register file.
    bypass_depth: int = 2
    #: Cycles to restart the front end after a full pipeline rollback.
    rollback_redirect_penalty: int = 12
    #: Cycles of issue suspension for a singleton re-execute (Section 3.5;
    #: "a cycle or two").
    singleton_reexec_cycles: int = 2

    @classmethod
    def small_core(cls) -> "HardwareConfig":
        """A 2-wide embedded-class core for sensitivity studies."""
        return cls(fetch_width=2, decode_width=2, issue_width=2,
                   commit_width=2, num_alus=2, num_muls=1, num_fpus=1,
                   issue_queue_size=20, rob_size=96, lsq_size=24,
                   l2_size_kb=512)

    @classmethod
    def aggressive_core(cls) -> "HardwareConfig":
        """A 6-wide, deeply provisioned core (the partial-redundancy
        papers' "aggressively-provisioned configurations")."""
        return cls(fetch_width=6, decode_width=6, issue_width=6,
                   commit_width=6, num_alus=6, num_muls=3, num_fpus=3,
                   issue_queue_size=72, rob_size=384, lsq_size=96,
                   phys_regs=384)

    def __post_init__(self) -> None:
        if self.phys_regs <= self.int_arch_regs * self.smt_contexts:
            raise ConfigurationError(
                "need more physical registers than architectural registers "
                f"({self.phys_regs} <= {self.int_arch_regs} x {self.smt_contexts})"
            )
        for name in ("fetch_width", "issue_width", "commit_width",
                     "issue_queue_size", "rob_size", "lsq_size",
                     "delay_buffer_size", "smt_contexts"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.bypass_depth < 0:
            raise ConfigurationError("bypass_depth must be >= 0")

    def __deepcopy__(self, memo) -> "HardwareConfig":
        return self    # frozen: shared by tandem-classifier core forks


def config_to_dict(config) -> Dict[str, object]:
    """Serialise any of the configuration dataclasses to a plain dict."""
    from dataclasses import asdict, is_dataclass
    if not is_dataclass(config):
        raise ConfigurationError(f"{config!r} is not a configuration")
    return asdict(config)


def config_from_dict(cls, data: Dict[str, object]):
    """Rebuild a configuration dataclass, rejecting unknown keys."""
    from dataclasses import fields, is_dataclass
    if not (isinstance(cls, type) and is_dataclass(cls)):
        raise ConfigurationError(f"{cls!r} is not a configuration class")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} keys: {sorted(unknown)}")
    return cls(**data)


def table2_rows(hw: HardwareConfig | None = None,
                fh: FaultHoundConfig | None = None) -> Dict[str, str]:
    """Render the configuration as paper-Table-2-style rows.

    Returns an ordered mapping of parameter name to formatted value; the
    Table 2 bench prints these rows verbatim.
    """
    hw = hw or HardwareConfig()
    fh = fh or FaultHoundConfig()
    return {
        "Cores": f"1 modelled (paper: 8), {hw.smt_contexts}-way SMT",
        "Fetch, Decode, Issue, Commit": f"{hw.fetch_width} wide",
        "ALU, Mul, FPU per core": f"{hw.num_alus}, {hw.num_muls}, {hw.num_fpus}",
        "Issue Queue size": str(hw.issue_queue_size),
        "Re-order Buffer": str(hw.rob_size),
        "INT arch register file": str(hw.int_arch_regs),
        "Physical registers": str(hw.phys_regs),
        "LSQ size": str(hw.lsq_size),
        "Delay buffer": f"{hw.delay_buffer_size} instructions",
        "FaultHound filters": (
            f"2 {fh.tcam_entries}-entry, {fh.value_bits}-bit TCAMs; "
            f"{fh.second_level_states}-state/bit second-level filter per TCAM; "
            f"{fh.squash_states}-state/TCAM-entry squash state machine"
        ),
        "Private L1 D": f"{hw.l1d_size_kb}KB, {hw.l1d_assoc}-way, {hw.l1d_latency} cycles",
        "Private L2": f"{hw.l2_size_kb // 1024}MB, {hw.l2_assoc}-way, {hw.l2_latency} cycles",
    }


__all__ = [
    "VALUE_BITS",
    "VALUE_MASK",
    "FaultHoundConfig",
    "PBFSConfig",
    "HardwareConfig",
    "config_to_dict",
    "config_from_dict",
    "table2_rows",
    "replace",
]
