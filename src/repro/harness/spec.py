"""Declarative campaign specs: ``.src.json`` compiled to ``.run.json``.

A campaign *source spec* is the human-authored side of the two-layer
pattern (cf. the ``.src.json`` / ``.run.json`` split in
``aws-crt-s3-benchmarks``): a small JSON document naming sweep axes
(benchmarks x schemes x fault counts x ...) plus per-task defaults.
:func:`compile_spec` is a **pure function** that expands the sweep into
an explicit, trivially-parseable *run spec* — a flat task list where
every task carries every knob, plus a content-addressed ``key`` that
identifies the computation exactly (two tasks with the same key are the
same campaign, so duplicates produced by overlapping axes are deduped
at compile time).

Source spec fields (all optional unless noted)::

    {
      "kind": "repro.campaign.src",       // required
      "version": 1,                       // required
      "name": "nightly",                  // defaults to the file stem
      "comment": "...",                   // free-form, carried through
      "priority": 0,                      // job priority (higher first)
      "defaults": {"faults": 24, ...},    // per-task knob overrides
      "sweep": {                          // axes: field -> value list
        "benchmark": ["mcf", "bzip2"],
        "scheme": ["faulthound", "pbfs"]
      },
      "tasks": [{"benchmark": "mcf", ...}] // explicit extra tasks
    }

The task list of the compiled run spec is the cross-product of the
sweep axes (each combination merged over ``defaults``) followed by the
explicit ``tasks`` (each merged over ``defaults``), deduplicated by
key. A spec with neither ``sweep`` nor ``tasks`` compiles to the single
task described by ``defaults``.

Every task knob maps 1:1 onto a ``repro campaign`` CLI flag
(:func:`task_argv`), so a compiled task executed by the job server is
*the same invocation* an operator would have typed — exit codes,
journals and stdout are identical to the one-shot CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ReproError

SRC_KIND = "repro.campaign.src"
RUN_KIND = "repro.campaign.run"
SPEC_VERSION = 1

#: Per-task knobs, their defaults, and the ``repro campaign`` flags they
#: compile to. ``benchmark`` has no default: it must come from an axis,
#: the defaults block, or an explicit task.
TASK_DEFAULTS: Dict[str, Any] = {
    "benchmark": None,
    "scheme": "faulthound",
    "faults": 60,
    "seed": 3,
    "batch_lanes": 1,
    "jobs": None,
    "no_cache": False,
    "max_retries": 3,
    "chunk_timeout": None,
    "chunk_windows": 8,
}

_TOP_LEVEL_FIELDS = ("kind", "version", "name", "comment", "priority",
                     "defaults", "sweep", "tasks")


class SpecError(ReproError):
    """A campaign spec failed to parse, validate or compile."""


def _canonical(document: Any) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def spec_digest(document: Any) -> str:
    """Stable content digest of a (JSON-safe) spec document."""
    return hashlib.sha256(_canonical(document).encode()).hexdigest()


def task_key(task: Dict[str, Any]) -> str:
    """Content-addressed identity of one compiled task.

    Only the knobs that reach the simulation (:data:`TASK_DEFAULTS`)
    participate, so two axis combinations that collapse onto the same
    invocation share a key and dedup at compile time.
    """
    payload = {name: task.get(name, default)
               for name, default in TASK_DEFAULTS.items()}
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _registries():
    # imported lazily: keeps `import repro.harness.spec` cheap and free
    # of the workload/scheme module graph until a spec is compiled
    from ..workloads import PROFILES
    from .experiment import SCHEMES
    return PROFILES, SCHEMES


def validate_task(task: Dict[str, Any], where: str = "task") -> List[str]:
    """Human-readable errors for one fully-merged task (empty = valid)."""
    profiles, schemes = _registries()
    errors: List[str] = []
    for field in task:
        if field not in TASK_DEFAULTS:
            errors.append(f"{where}: unknown task field {field!r}")
    benchmark = task.get("benchmark")
    if not isinstance(benchmark, str) or benchmark not in profiles:
        errors.append(f"{where}: benchmark {benchmark!r} not in "
                      f"{sorted(profiles)}")
    scheme = task.get("scheme")
    if not isinstance(scheme, str) or scheme not in schemes:
        errors.append(f"{where}: scheme {scheme!r} not in "
                      f"{sorted(schemes)}")
    for field, minimum in (("faults", 1), ("batch_lanes", 1),
                           ("chunk_windows", 1), ("max_retries", 0)):
        value = task.get(field, TASK_DEFAULTS[field])
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < minimum:
            # batch_lanes shares the CLI's bound: K < 1 is an error, not
            # a silent clamp to the scalar path
            errors.append(f"{where}: {field} must be an integer "
                          f">= {minimum} (got {value!r})")
    seed = task.get("seed", TASK_DEFAULTS["seed"])
    if not isinstance(seed, int) or isinstance(seed, bool):
        errors.append(f"{where}: seed must be an integer (got {seed!r})")
    jobs = task.get("jobs")
    if jobs is not None and (not isinstance(jobs, int)
                             or isinstance(jobs, bool) or jobs < 1):
        errors.append(f"{where}: jobs must be null or an integer >= 1 "
                      f"(got {jobs!r})")
    timeout = task.get("chunk_timeout")
    if timeout is not None and (not isinstance(timeout, (int, float))
                                or isinstance(timeout, bool)
                                or timeout <= 0):
        errors.append(f"{where}: chunk_timeout must be null or a "
                      f"positive number (got {timeout!r})")
    if not isinstance(task.get("no_cache", False), bool):
        errors.append(f"{where}: no_cache must be a boolean")
    return errors


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def _expand_sweep(sweep: Dict[str, List[Any]],
                  defaults: Dict[str, Any]) -> Iterable[Dict[str, Any]]:
    """Cross-product of the sweep axes over the defaults, in the axis
    order of the source document (stable: JSON objects keep file
    order)."""
    axes = list(sweep.items())
    for field, values in axes:
        if field not in TASK_DEFAULTS:
            raise SpecError(f"sweep: unknown task field {field!r}")
        if not isinstance(values, list):
            raise SpecError(f"sweep axis {field!r} must be a list")
        if not values:
            raise SpecError(f"sweep axis {field!r} is empty — an empty "
                            f"axis would silently compile zero tasks")
    combos: List[Dict[str, Any]] = [dict(defaults)]
    for field, values in axes:
        combos = [dict(combo, **{field: value})
                  for combo in combos for value in values]
    return combos


def compile_spec(src: Dict[str, Any],
                 name: Optional[str] = None) -> Dict[str, Any]:
    """Compile a source spec document into its explicit run document.

    Pure: the output depends only on the input document (and the
    benchmark/scheme registries it is validated against), so compiling
    the same spec twice — or on another machine — yields byte-identical
    JSON under ``sort_keys``.
    """
    if not isinstance(src, dict):
        raise SpecError("spec must be a JSON object")
    if src.get("kind") != SRC_KIND:
        raise SpecError(f"spec kind must be {SRC_KIND!r} "
                        f"(got {src.get('kind')!r})")
    if src.get("version") != SPEC_VERSION:
        raise SpecError(f"unsupported spec version {src.get('version')!r} "
                        f"(this toolkit compiles version {SPEC_VERSION})")
    for field in src:
        if field not in _TOP_LEVEL_FIELDS:
            raise SpecError(f"unknown top-level field {field!r}")
    priority = src.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise SpecError(f"priority must be an integer (got {priority!r})")

    defaults = dict(TASK_DEFAULTS)
    overrides = src.get("defaults", {})
    if not isinstance(overrides, dict):
        raise SpecError("defaults must be an object")
    for field in overrides:
        if field not in TASK_DEFAULTS:
            raise SpecError(f"defaults: unknown task field {field!r}")
    defaults.update(overrides)

    merged: List[Dict[str, Any]] = []
    if "sweep" in src:
        sweep = src["sweep"]
        if not isinstance(sweep, dict):
            raise SpecError("sweep must be an object of axis lists")
        merged.extend(_expand_sweep(sweep, defaults))
    for index, task in enumerate(src.get("tasks", [])):
        if not isinstance(task, dict):
            raise SpecError(f"tasks[{index}] must be an object")
        merged.append(dict(defaults, **task))
    if not merged:
        merged.append(dict(defaults))

    errors: List[str] = []
    for index, task in enumerate(merged):
        errors.extend(validate_task(task, where=f"tasks[{index}]"))
    if errors:
        raise SpecError("invalid spec:\n  " + "\n  ".join(errors))

    tasks: List[Dict[str, Any]] = []
    seen: Dict[str, int] = {}
    for task in merged:
        key = task_key(task)
        if key in seen:
            continue
        seen[key] = len(tasks)
        compiled = {name_: task.get(name_, default)
                    for name_, default in TASK_DEFAULTS.items()}
        compiled["key"] = key
        tasks.append(compiled)

    run = {
        "kind": RUN_KIND,
        "version": SPEC_VERSION,
        "name": src.get("name") or name or "campaign",
        "comment": src.get("comment", ""),
        "priority": priority,
        "source_digest": spec_digest(src),
        "deduped": len(merged) - len(tasks),
        "tasks": tasks,
    }
    return run


def validate_run(run: Dict[str, Any]) -> List[str]:
    """Errors for a run document (hand-authored or compiled)."""
    if not isinstance(run, dict):
        return ["run spec must be a JSON object"]
    errors: List[str] = []
    if run.get("kind") != RUN_KIND:
        errors.append(f"run kind must be {RUN_KIND!r} "
                      f"(got {run.get('kind')!r})")
    if run.get("version") != SPEC_VERSION:
        errors.append(f"unsupported run version {run.get('version')!r}")
    tasks = run.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        errors.append("run spec has no tasks")
        return errors
    for index, task in enumerate(tasks):
        if not isinstance(task, dict):
            errors.append(f"tasks[{index}] must be an object")
            continue
        errors.extend(validate_task(
            {k: v for k, v in task.items() if k != "key"},
            where=f"tasks[{index}]"))
        if task.get("key") != task_key(task):
            errors.append(f"tasks[{index}]: key {task.get('key')!r} does "
                          f"not match its content (expected "
                          f"{task_key(task)!r})")
    return errors


# ----------------------------------------------------------------------
# file plumbing
# ----------------------------------------------------------------------
def load_spec(path: str | os.PathLike) -> Dict[str, Any]:
    """Parse a ``.src.json`` or ``.run.json`` document from disk."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SpecError(f"unreadable spec {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise SpecError(f"{path}: spec must be a JSON object")
    return document


def load_run(path: str | os.PathLike) -> Dict[str, Any]:
    """Load a run document, compiling a source spec on the fly.

    Accepts either layer: a ``.run.json`` is validated as-is, a
    ``.src.json`` is compiled first — so every consumer (``repro
    submit``, the server queue) takes both.
    """
    path = pathlib.Path(path)
    document = load_spec(path)
    if document.get("kind") == SRC_KIND:
        return compile_spec(document, name=default_name(path))
    errors = validate_run(document)
    if errors:
        raise SpecError(f"invalid run spec {path}:\n  "
                        + "\n  ".join(errors))
    return document


def default_name(path: str | os.PathLike) -> str:
    """`nightly.src.json` -> `nightly` (strips either spec suffix)."""
    name = pathlib.Path(path).name
    for suffix in (".src.json", ".run.json", ".json"):
        if name.endswith(suffix):
            return name[:-len(suffix)] or "campaign"
    return name


def run_path_for(src_path: str | os.PathLike) -> pathlib.Path:
    """Conventional sibling output path: ``x.src.json`` -> ``x.run.json``."""
    src_path = pathlib.Path(src_path)
    name = src_path.name
    if name.endswith(".src.json"):
        return src_path.with_name(name[:-len(".src.json")] + ".run.json")
    return src_path.with_name(src_path.stem + ".run.json")


def compile_file(src_path: str | os.PathLike,
                 out_path: Optional[str | os.PathLike] = None
                 ) -> pathlib.Path:
    """Compile ``src_path`` and write the run document next to it."""
    src_path = pathlib.Path(src_path)
    run = compile_spec(load_spec(src_path), name=default_name(src_path))
    out = pathlib.Path(out_path) if out_path else run_path_for(src_path)
    out.write_text(json.dumps(run, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


# ----------------------------------------------------------------------
# CLI parity
# ----------------------------------------------------------------------
def task_argv(task: Dict[str, Any],
              run_dir: Optional[str | os.PathLike] = None,
              jobs: Optional[int] = None) -> List[str]:
    """The exact ``repro`` argv a compiled task stands for.

    Every knob is spelled out explicitly (the run layer never relies on
    CLI defaults), so the server-executed subprocess and a hand-typed
    one-shot ``repro campaign`` are the same invocation — same stdout,
    same journal, same exit code. *jobs* overrides the task's worker
    count (the server's multiplexing share); *run_dir* adds the
    crash-safe journal.
    """
    argv = ["campaign", str(task["benchmark"]),
            "--scheme", str(task["scheme"]),
            "--faults", str(task["faults"]),
            "--seed", str(task["seed"]),
            "--batch-lanes", str(task.get("batch_lanes", 1)),
            "--max-retries", str(task.get("max_retries", 3)),
            "--chunk-windows", str(task.get("chunk_windows", 8))]
    effective_jobs = jobs if jobs is not None else task.get("jobs")
    if effective_jobs is not None:
        argv += ["--jobs", str(effective_jobs)]
    if task.get("no_cache"):
        argv.append("--no-cache")
    if task.get("chunk_timeout") is not None:
        argv += ["--chunk-timeout", str(task["chunk_timeout"])]
    if run_dir is not None:
        argv += ["--run-dir", str(run_dir)]
    return argv


__all__ = [
    "RUN_KIND",
    "SPEC_VERSION",
    "SRC_KIND",
    "SpecError",
    "TASK_DEFAULTS",
    "compile_file",
    "compile_spec",
    "default_name",
    "load_run",
    "load_spec",
    "run_path_for",
    "spec_digest",
    "task_argv",
    "task_key",
    "validate_run",
    "validate_task",
]
