"""Client side of the campaign job server: submit, watch, steer.

The filesystem is the wire format. A submission is one atomic rename
into ``<serve-dir>/queue/`` — identical whether the server is up or
down, so ``repro submit`` never fails just because the server is
restarting; the job runs on the next start. The control socket
(newline-delimited JSON over a unix domain socket, see
:mod:`repro.harness.server`) is used when the server is alive — for a
wake-up poke after submit, live progress in ``status``, and the
``cancel``/``resume``/``shutdown`` verbs; ``resume`` falls back to
rewriting ``job.json`` on disk when the server is down (the next
server start adopts it).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time
from typing import Any, Dict, List, Optional

from .server import (TERMINAL_STATES, ServeError, atomic_write_json,
                     jittered_backoff, job_doc_from_submission,
                     job_summary, new_job_id, pid_alive, read_json,
                     socket_path_for)
from .spec import load_run


class ServeClient:
    """Talk to (or around) the job server for one serve directory."""

    def __init__(self, serve_dir: str | os.PathLike,
                 timeout: float = 10.0):
        self.serve_dir = pathlib.Path(serve_dir).resolve()
        self.queue_dir = self.serve_dir / "queue"
        self.jobs_dir = self.serve_dir / "jobs"
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _socket_path(self) -> pathlib.Path:
        marker = read_json(self.serve_dir / "server.json")
        if marker and marker.get("socket"):
            return pathlib.Path(marker["socket"])
        return socket_path_for(self.serve_dir)

    def server_alive(self) -> bool:
        marker = read_json(self.serve_dir / "server.json")
        return bool(marker) and pid_alive(int(marker.get("pid", -1)))

    def request(self, op: str, **fields: Any) -> Optional[Dict[str, Any]]:
        """One socket round-trip; ``None`` when the server is away."""
        payload = dict(fields, op=op)
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
                conn.settimeout(self.timeout)
                conn.connect(str(self._socket_path()))
                conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
                blob = b""
                while not blob.endswith(b"\n"):
                    piece = conn.recv(65536)
                    if not piece:
                        break
                    blob += piece
        except (OSError, socket.timeout):
            return None
        try:
            response = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return response if isinstance(response, dict) else None

    # -- verbs ---------------------------------------------------------
    def submit(self, spec_path: str | os.PathLike,
               priority: Optional[int] = None,
               name: Optional[str] = None) -> str:
        """Queue a campaign spec (``.src.json`` compiled on the fly,
        ``.run.json`` validated as-is); returns the new job id."""
        run = load_run(spec_path)
        job_name = name or str(run.get("name", "campaign"))
        job_id = new_job_id(job_name)
        submission = {
            "id": job_id,
            "name": job_name,
            "priority": int(priority if priority is not None
                            else run.get("priority", 0)),
            "submitted_at": time.time(),
            "run": run,
        }
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.queue_dir / f"{job_id}.json", submission)
        self.request("poke")        # wake the scan; harmless when away
        return job_id

    def list(self) -> List[Dict[str, Any]]:
        """Every known job, queued submissions included."""
        documents: Dict[str, Dict[str, Any]] = {}
        for queue_file in sorted(self.queue_dir.glob("*.json")):
            submission = read_json(queue_file)
            if submission and "id" in submission and "run" in submission:
                documents[str(submission["id"])] = (
                    job_doc_from_submission(submission))
        for job_json in sorted(self.jobs_dir.glob("*/job.json")):
            doc = read_json(job_json)
            if doc and "id" in doc:
                documents[str(doc["id"])] = doc
        return [job_summary(doc) for doc in
                sorted(documents.values(),
                       key=lambda d: (d.get("submitted_at", 0.0),
                                      str(d.get("id"))))]

    def status(self, job_id: str) -> Dict[str, Any]:
        """Job document plus, when the server is live and the job is
        running, the folded :class:`CampaignMonitor` progress snapshot
        of its in-flight task."""
        response = self.request("status", job=job_id)
        if response is not None and response.get("ok"):
            return response
        doc = self._read_doc(job_id)
        if doc is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        return {"ok": True, "job": doc}

    def cancel(self, job_id: str) -> Dict[str, Any]:
        response = self.request("cancel", job=job_id)
        if response is not None:
            return response
        # server away: only a still-queued submission can be cancelled
        # from the outside — a running job has no server to stop it
        queue_file = self.queue_dir / f"{job_id}.json"
        submission = read_json(queue_file)
        if submission is not None:
            doc = job_doc_from_submission(submission)
            doc["state"] = "cancelled"
            atomic_write_json(self.jobs_dir / job_id / "job.json", doc)
            queue_file.unlink(missing_ok=True)
            return {"ok": True, "state": "cancelled"}
        doc = self._read_doc(job_id)
        if doc is not None and doc.get("state") == "queued":
            doc["state"] = "cancelled"
            atomic_write_json(self.jobs_dir / job_id / "job.json", doc)
            return {"ok": True, "state": "cancelled"}
        return {"ok": False,
                "error": "server is not running; only queued jobs can "
                         "be cancelled offline"}

    def resume(self, job_id: str) -> Dict[str, Any]:
        response = self.request("resume", job=job_id)
        if response is not None:
            return response
        doc = self._read_doc(job_id)
        if doc is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        if doc.get("state") in ("queued", "running"):
            return {"ok": True, "state": doc["state"]}
        from .server import TASK_SETTLED
        for task_doc in doc.get("tasks", []):
            if task_doc.get("state") not in TASK_SETTLED:
                task_doc["state"] = "pending"
                task_doc["exit_code"] = None
        doc["state"] = "queued"
        atomic_write_json(self.jobs_dir / job_id / "job.json", doc)
        return {"ok": True, "state": "queued"}

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job reaches a terminal state.

        Prefers the live ``status`` socket verb (the server's in-memory
        view, fresher than the fsync'd ``job.json``) and falls back to
        the on-disk document when the server is away. Delays follow an
        exponential backoff with deterministic jitter capped at 5s —
        tight polling while the job is fresh, gentle on the disk and
        socket once it has been running a while — instead of the old
        fixed 0.5s disk spin. An explicit *poll* sets the backoff base
        (the first delay), preserving the old keyword's meaning.
        """
        base = poll if poll is not None else 0.05
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        attempt = 0
        while True:
            doc: Optional[Dict[str, Any]] = None
            response = self.request("status", job=job_id)
            if response is not None and response.get("ok"):
                doc = response.get("job")
            if doc is None:
                doc = self._read_doc(job_id)
            if doc is not None and doc.get("state") in TERMINAL_STATES:
                return doc
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out waiting for job {job_id} "
                    f"(state {doc.get('state') if doc else 'unknown'})")
            attempt += 1
            delay = jittered_backoff(attempt, base=base, cap=5.0,
                                     salt=job_id)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline - time.monotonic()))
            time.sleep(delay)

    # -- helpers -------------------------------------------------------
    def _read_doc(self, job_id: str) -> Optional[Dict[str, Any]]:
        doc = read_json(self.jobs_dir / job_id / "job.json")
        if doc is not None:
            return doc
        submission = read_json(self.queue_dir / f"{job_id}.json")
        if submission and "id" in submission and "run" in submission:
            return job_doc_from_submission(submission)
        return None


__all__ = ["ServeClient"]
