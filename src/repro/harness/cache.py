"""Persistent, content-addressed artifact cache for experiment results.

Campaigns and fault-free timing runs dominate figure-regeneration
wall-clock, yet they are pure functions of the experiment configuration
(design decision #10: every stochastic choice flows from an explicit
seed). The cache therefore keys each artefact by a SHA-256 digest of

- the artefact kind (``fault_free`` / ``characterize`` / ``coverage`` /
  ``srt``),
- every semantic coordinate (benchmark, scheme, coverage, ...),
- the full :class:`~repro.harness.experiment.ExperimentConfig` and
  :class:`~repro.config.HardwareConfig`, and
- a *code-version salt* derived from the source bytes of the ``repro``
  package, so any simulator change invalidates the whole cache
  automatically (no stale-results footgun).

Artefacts are pickled dataclasses stored under
``benchmarks/.cache/<kind>/<digest>.pkl`` (override the root with
``REPRO_CACHE_DIR``). Writes are atomic *and durable*: the tmp file is
fsync'd before ``os.replace``, and the parent directory is fsync'd when
the entry is first created, so a machine crash right after ``put``
returns can never leave a zero-length or half-written entry behind.
Concurrent workers racing on the same key are safe; unreadable or
corrupt entries degrade to misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from typing import Any, Dict, Optional

from ..obs.events import NULL_LOG
from ..obs.metrics import BYTES_BUCKETS, NULL_METRICS

_SALT: Optional[str] = None


def code_version_salt() -> str:
    """Digest of the ``repro`` package's source bytes (cached per process).

    ``REPRO_CACHE_SALT`` overrides the computed value — useful in tests
    and for forcing a cold cache without deleting anything.
    """
    global _SALT
    if _SALT is None:
        override = os.environ.get("REPRO_CACHE_SALT")
        if override:
            _SALT = override
        else:
            package_root = pathlib.Path(__file__).resolve().parents[1]
            digest = hashlib.sha256()
            for path in sorted(package_root.rglob("*.py")):
                digest.update(str(path.relative_to(package_root)).encode())
                digest.update(path.read_bytes())
            _SALT = digest.hexdigest()[:16]
    return _SALT


def _canonical(value: Any) -> Any:
    """Reduce *value* to JSON-stable primitives for key derivation."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        return repr(value)          # full precision, no str() truncation
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if hasattr(value, "value"):     # enums
        return value.value
    return repr(value)


def default_cache_root() -> pathlib.Path:
    """``REPRO_CACHE_DIR``, else ``<repo>/benchmarks/.cache`` when the
    repository layout is recognisable, else ``./benchmarks/.cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    repo = pathlib.Path(__file__).resolve().parents[3]
    if (repo / "benchmarks").is_dir():
        return repo / "benchmarks" / ".cache"
    return pathlib.Path("benchmarks") / ".cache"


class ArtifactCache:
    """A directory of pickled experiment artefacts, addressed by content key.

    The cache never raises out of ``get``/``put``: any filesystem or
    deserialisation problem silently degrades to a miss (the artefact is
    recomputed), keeping the cache a pure accelerator.
    """

    def __init__(self, root: str | os.PathLike | None = None, events=None):
        self.root = pathlib.Path(root) if root else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.events = events if events is not None else NULL_LOG
        self.metrics = NULL_METRICS

    @classmethod
    def default(cls, events=None) -> "ArtifactCache":
        return cls(default_cache_root(), events=events)

    # -- keys ----------------------------------------------------------
    def key(self, kind: str, **parts: Any) -> str:
        """Content key for one artefact: kind + coordinates + code salt."""
        document = {
            "kind": kind,
            "salt": code_version_salt(),
            "parts": _canonical(parts),
        }
        blob = json.dumps(document, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.root / kind / f"{key}.pkl"

    def artifact_path(self, kind: str, key: str) -> pathlib.Path:
        """Where the artefact for (kind, key) lives (or would live) —
        the anchor next to which run manifests are written."""
        return self._path(kind, key)

    def contains(self, kind: str, key: str) -> bool:
        """Whether an entry exists for (kind, key) — no hit/miss counts."""
        return self._path(kind, key).exists()

    # -- access --------------------------------------------------------
    def get(self, kind: str, key: str) -> Optional[Any]:
        """The cached artefact, or ``None`` on a miss (counted)."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                artefact = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, ValueError) as exc:
            if path.exists():
                # corrupt entry: drop it so the rewrite starts clean
                self.corrupt += 1
                self.metrics.counter("cache_corrupt_total").inc()
                self.events.emit("cache_corrupt", kind=kind, key=key,
                                 path=str(path), action="dropped",
                                 error=f"{type(exc).__name__}: {exc}")
                try:
                    path.unlink()
                except OSError:
                    pass
            self.misses += 1
            self.metrics.counter("cache_misses_total").inc()
            return None
        self.hits += 1
        if self.metrics.enabled:
            self.metrics.counter("cache_hits_total").inc()
            try:
                self.metrics.histogram(
                    "cache_artifact_bytes",
                    BYTES_BUCKETS).observe(path.stat().st_size)
            except OSError:
                pass
        return artefact

    def put(self, kind: str, key: str, artefact: Any) -> bool:
        """Persist *artefact* atomically and durably; False on failure.

        The tmp file is flushed and fsync'd before ``os.replace`` so
        the rename never publishes an entry whose bytes are still in
        the page cache; on first create the parent directory is fsync'd
        too so the *name* survives a crash (remote executors treat the
        presence of a fabric-store entry as proof the work happened —
        a lost entry after an acknowledged put would stall a lease
        forever).
        """
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key}.", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(artefact, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                    handle.flush()
                    os.fsync(handle.fileno())
                existed = path.exists()
                os.replace(tmp_name, path)
                if not existed:
                    # directory fsync durably records the new name; not
                    # every filesystem supports opening a directory, so
                    # degrade silently (the data fsync above still held)
                    try:
                        dir_fd = os.open(path.parent, os.O_RDONLY)
                    except OSError:
                        pass
                    else:
                        try:
                            os.fsync(dir_fd)
                        except OSError:
                            pass
                        finally:
                            os.close(dir_fd)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError):
            return False
        if self.metrics.enabled:
            self.metrics.counter("cache_puts_total").inc()
            try:
                self.metrics.histogram(
                    "cache_artifact_bytes",
                    BYTES_BUCKETS).observe(path.stat().st_size)
            except OSError:
                pass
        return True

    # -- maintenance ---------------------------------------------------
    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))

    def verify(self, quarantine: bool = True) -> Dict[str, Any]:
        """Integrity sweep: unpickle every entry, report the casualties.

        Unreadable entries are moved into ``<root>/quarantine/`` (with
        their manifests, renamed ``*.pkl.corrupt`` so they never count
        as cache entries again) for post-mortem inspection, or deleted
        outright with ``quarantine=False``. Each one also raises a
        ``cache_corrupt`` event. Returns ``{"checked", "ok", "corrupt",
        "quarantined", "entries": [...]}`` — ``entries`` lists the
        corrupt ones.
        """
        report: Dict[str, Any] = {"checked": 0, "ok": 0, "corrupt": 0,
                                  "quarantined": 0, "entries": []}
        if not self.root.exists():
            return report
        quarantine_root = self.root / "quarantine"
        for path in sorted(self.root.rglob("*.pkl")):
            if quarantine_root in path.parents:
                continue
            report["checked"] += 1
            try:
                with open(path, "rb") as handle:
                    pickle.load(handle)
                report["ok"] += 1
                continue
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, ValueError) as exc:
                error = f"{type(exc).__name__}: {exc}"
            report["corrupt"] += 1
            self.corrupt += 1
            kind = path.parent.name
            action = "dropped"
            manifest = path.with_name(
                path.name.replace(".pkl", ".manifest.json"))
            if quarantine:
                try:
                    target_dir = quarantine_root / kind
                    target_dir.mkdir(parents=True, exist_ok=True)
                    os.replace(path, target_dir / (path.name + ".corrupt"))
                    if manifest.exists():
                        os.replace(manifest, target_dir / manifest.name)
                    action = "quarantined"
                    report["quarantined"] += 1
                except OSError:
                    pass
            else:
                for stale in (path, manifest):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
            self.events.emit("cache_corrupt", kind=kind, key=path.stem,
                             path=str(path), action=action, error=error)
            report["entries"].append({"kind": kind, "key": path.stem,
                                      "path": str(path), "error": error,
                                      "action": action})
        return report


__all__ = ["ArtifactCache", "code_version_salt", "default_cache_root"]
