"""Chunk executors: pluggable dispatch behind the campaign supervisor.

The supervisor's retry/attribution/quarantine/journal machinery is
executor-independent: a chunk is a pure function of its content-
addressed key (configuration + phase + fault plan + window range), so
*where* it runs — in-process, on a local worker pool, or on a remote
agent — cannot change the campaign's results. This module makes that
boundary explicit. :class:`ChunkExecutor` is the interface the
supervisor dispatches one phase's chunk queue through; the three
implementations are:

- :class:`SerialChunkExecutor` — the in-process path threading one live
  golden core through the chunks (``Supervisor._run_serial``);
- :class:`LocalPoolExecutor` — the ``ProcessPoolExecutor`` path with
  crash attribution and watchdog timeouts (``Supervisor._run_pool``);
- :class:`RemoteChunkExecutor` — lease-based dispatch to lightweight
  worker agents (:mod:`repro.harness.agent`) over a shared *fabric
  directory*.

The fabric directory is the entire wire format::

    <fabric>/agents/<name>.json   agent registry (pid, socket, slots,
                                  heartbeat) — atomic writes
    <fabric>/store/               content-addressed store (ArtifactCache)
        chunk_task/<key>.pkl      self-contained chunk descriptor
        chunk_result/<key>.pkl    classified windows for that key

A chunk descriptor carries everything an agent needs (config, fault
records, window range, boundary checkpoint), so an agent has no session
state: it can join or leave mid-campaign, and any agent can run any
chunk. Robustness semantics of the remote executor:

- **leases** — a dispatched chunk holds a lease on its agent; every
  successful status poll renews the lease's heartbeat. A lease expires
  when its agent dies (registry pid gone), becomes unreachable
  (consecutive connect failures past ``reconnect_limit``, with
  exponential backoff + jitter between probes — a dropped socket models
  a network partition), or goes silent past ``lease_timeout``; expiry
  charges the chunk one attempt through the supervisor's ordinary
  retry/bisect/quarantine path and re-dispatches it;
- **speculation** — when the queue is drained and slots are idle, the
  longest-running chunk past its throughput-derived straggler threshold
  is speculatively re-executed on a second agent; results dedup by
  chunk key, first result wins, the loser is cancelled;
- **elasticity** — agents joining mid-campaign are picked up by the
  registry scan and leased work immediately; agents leaving (cleanly or
  by SIGKILL) only cost their in-flight leases;
- **degradation** — when every agent is lost for ``loss_grace``
  seconds, the remaining chunks (boundary checkpoints intact) are
  handed to the local pool/serial path, so a run that loses its whole
  fleet still completes — bit-for-bit equal to a local run.

Because results are keyed by the same digest the journal uses,
``repro resume`` is executor-agnostic: a run started remotely can be
resumed locally (or vice versa) and converges to identical output.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import socket as socket_module
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .cache import ArtifactCache
from .server import jittered_backoff, pid_alive, read_json

#: Fabric-directory layout (shared with :mod:`repro.harness.agent`).
AGENTS_DIRNAME = "agents"
STORE_DIRNAME = "store"
#: Store kinds for chunk shipping.
TASK_KIND = "chunk_task"
RESULT_KIND = "chunk_result"


# ----------------------------------------------------------------------
# fabric plumbing (executor + agent + CLI)
# ----------------------------------------------------------------------
def fabric_store(fabric_dir: str | os.PathLike) -> ArtifactCache:
    """The fabric's shared content-addressed store.

    Deliberately separate from the user's artifact cache: chunk
    descriptors/results are transport, not cached experiment artefacts,
    so ``--no-cache`` campaigns still run remotely.
    """
    return ArtifactCache(pathlib.Path(fabric_dir) / STORE_DIRNAME)


def agent_registry_dir(fabric_dir: str | os.PathLike) -> pathlib.Path:
    return pathlib.Path(fabric_dir) / AGENTS_DIRNAME


def agent_record_path(fabric_dir: str | os.PathLike,
                      name: str) -> pathlib.Path:
    return agent_registry_dir(fabric_dir) / f"{name}.json"


def agent_socket_path(fabric_dir: str | os.PathLike,
                      name: str) -> pathlib.Path:
    """Control-socket path for one agent (same 108-byte-limit dodge as
    the job server: a digest in the temp dir, not a path in the fabric
    dir)."""
    digest = hashlib.sha256(
        f"{pathlib.Path(fabric_dir).resolve()}::{name}".encode()
    ).hexdigest()[:12]
    return (pathlib.Path(tempfile.gettempdir())
            / f"repro-agent-{digest}.sock")


def read_agent_registry(
        fabric_dir: str | os.PathLike) -> Dict[str, Dict[str, Any]]:
    """Every parseable agent record in the fabric, by name. Liveness is
    the caller's problem (records outlive SIGKILLed agents)."""
    registry: Dict[str, Dict[str, Any]] = {}
    directory = agent_registry_dir(fabric_dir)
    if not directory.is_dir():
        return registry
    for path in sorted(directory.glob("*.json")):
        record = read_json(path)
        if record and record.get("name") and record.get("socket"):
            registry[str(record["name"])] = record
    return registry


def agent_request(socket_path: str | os.PathLike, op: str,
                  timeout: float = 5.0,
                  **fields: Any) -> Optional[Dict[str, Any]]:
    """One newline-JSON round-trip to an agent; ``None`` when it is
    unreachable (same protocol as the job server's control plane)."""
    payload = dict(fields, op=op)
    try:
        with socket_module.socket(socket_module.AF_UNIX,
                                  socket_module.SOCK_STREAM) as conn:
            conn.settimeout(timeout)
            conn.connect(str(socket_path))
            conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
            blob = b""
            while not blob.endswith(b"\n"):
                piece = conn.recv(65536)
                if not piece:
                    break
                blob += piece
    except (OSError, socket_module.timeout):
        return None
    try:
        response = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return response if isinstance(response, dict) else None


# ----------------------------------------------------------------------
# the executor interface
# ----------------------------------------------------------------------
class ChunkExecutor:
    """Where one phase's chunk queue runs.

    ``run_phase`` owns the queue until every chunk is completed,
    quarantined, or the campaign drains; completions/failures flow
    through the supervisor's ``_complete`` / ``_note_failure`` /
    ``_requeue_or_split`` machinery so journaling, retry accounting and
    quarantine stay identical across executors. ``needs_checkpoints``
    tells the supervisor whether to run the boundary-checkpoint golden
    pass before dispatch (the serial path threads a live golden core
    instead).
    """

    kind: str = "?"
    needs_checkpoints: bool = True

    def run_phase(self, sup, phase_ctx, chunks, done, quarantined,
                  report, jobs: int, ctx=None) -> None:
        raise NotImplementedError


class SerialChunkExecutor(ChunkExecutor):
    """In-process execution (one live golden core, no checkpoints)."""

    kind = "serial"
    needs_checkpoints = False

    def run_phase(self, sup, phase_ctx, chunks, done, quarantined,
                  report, jobs: int, ctx=None) -> None:
        sup._run_serial(phase_ctx, chunks, done, quarantined, report,
                        ctx=ctx)


class LocalPoolExecutor(ChunkExecutor):
    """Local ``ProcessPoolExecutor`` dispatch with crash attribution."""

    kind = "pool"
    needs_checkpoints = True

    def run_phase(self, sup, phase_ctx, chunks, done, quarantined,
                  report, jobs: int, ctx=None) -> None:
        sup._run_pool(phase_ctx, chunks, done, quarantined, report,
                      jobs, ctx=ctx)


# ----------------------------------------------------------------------
# remote executor internals
# ----------------------------------------------------------------------
class _AgentLink:
    """Executor-side view of one registered agent."""

    def __init__(self, name: str, record: Dict[str, Any]):
        self.name = name
        self.record = record
        self.socket_path = pathlib.Path(str(record.get("socket", "")))
        self.slots = max(1, int(record.get("slots", 1)))
        self.generation = record.get("started_at")
        self.failures = 0            # consecutive failed round-trips
        self.retry_at = 0.0          # backoff gate on the next probe
        self.lost = False

    @property
    def pid(self) -> int:
        try:
            return int(self.record.get("pid", -1))
        except (TypeError, ValueError):
            return -1

    def ready(self, now: float) -> bool:
        """May we talk to this agent right now? (reconnect backoff)"""
        return (not self.lost
                and (self.failures == 0 or now >= self.retry_at))


@dataclass
class _Lease:
    """One chunk assignment: agent + liveness + straggler deadline."""

    chunk: Any
    link: _AgentLink
    granted_at: float
    heartbeat_at: float
    deadline: float = 0.0            # watchdog (0 = none)
    speculative: bool = False


@dataclass
class RemotePolicy:
    """Tuning knobs for :class:`RemoteChunkExecutor` (test/CI friendly
    defaults; production fabrics mostly keep these)."""

    #: Seconds between dispatch/poll iterations.
    poll_interval: float = 0.1
    #: A lease with no successful agent round-trip for this long expires
    #: even if the agent still looks alive in the registry.
    lease_timeout: float = 30.0
    #: Agent reconnect backoff (exponential + jitter, per agent).
    reconnect_base: float = 0.2
    reconnect_max: float = 5.0
    #: Consecutive failed round-trips before an agent is declared lost.
    reconnect_limit: int = 3
    #: Seconds with zero usable agents before degrading to local
    #: execution (elastic joins during the grace period cancel it).
    loss_grace: float = 5.0
    #: Straggler threshold: speculate once a chunk has run longer than
    #: ``max(min_speculate, speculate_factor * estimate * windows)``.
    speculate_factor: float = 4.0
    min_speculate: float = 10.0
    #: Per-request socket timeout.
    request_timeout: float = 5.0


class RemoteChunkExecutor(ChunkExecutor):
    """Lease-based chunk dispatch to fabric agents.

    One instance serves every phase of a campaign; agent links (and
    their failure history) persist across phases so a dead fleet is not
    re-probed from scratch each fan-out.
    """

    kind = "remote"
    needs_checkpoints = True

    def __init__(self, fabric_dir: str | os.PathLike,
                 policy: Optional[RemotePolicy] = None):
        self.fabric_dir = pathlib.Path(fabric_dir).resolve()
        self.remote_policy = policy or RemotePolicy()
        self.store = fabric_store(self.fabric_dir)
        self._links: Dict[str, _AgentLink] = {}
        self._jitter_salt = 0

    # -- wire ----------------------------------------------------------
    def _request(self, link: _AgentLink, op: str,
                 **fields: Any) -> Optional[Dict[str, Any]]:
        """Round-trip with reachability accounting. A missing socket
        file (partition / clean shutdown) fails fast without a connect
        timeout; any failure arms the reconnect backoff."""
        response = None
        if link.socket_path.exists():
            response = agent_request(
                link.socket_path, op,
                timeout=self.remote_policy.request_timeout, **fields)
        if response is None:
            link.failures += 1
            self._jitter_salt += 1
            link.retry_at = time.monotonic() + jittered_backoff(
                link.failures, base=self.remote_policy.reconnect_base,
                cap=self.remote_policy.reconnect_max,
                salt=f"{link.name}:{self._jitter_salt}")
            return None
        link.failures = 0
        return response

    # -- events --------------------------------------------------------
    def _agent_event(self, sup, action: str, link: _AgentLink,
                     **fields: Any) -> None:
        sup.events.emit("agent", action=action, agent=link.name,
                        pid=link.pid, fabric=str(self.fabric_dir),
                        **fields)

    def _lease_event(self, sup, action: str, phase_ctx, chunk,
                     agent: str, **fields: Any) -> None:
        sup.events.emit("lease", action=action, key=chunk.key,
                        agent=agent, lo=chunk.lo, hi=chunk.hi,
                        phase=phase_ctx.phase, **fields)

    # -- registry scan / elastic membership ----------------------------
    def _scan(self, sup, phase_ctx, leases: List[_Lease], pending,
              done, quarantined, report, now: float) -> None:
        registry = read_agent_registry(self.fabric_dir)
        for name, record in registry.items():
            link = self._links.get(name)
            if link is None:
                link = _AgentLink(name, record)
                self._links[name] = link
                self._agent_event(sup, "join", link, slots=link.slots)
            elif record.get("started_at") != link.generation:
                # same name, new process: a restarted agent re-joins
                # with a clean slate (old leases expire below by pid)
                replacement = _AgentLink(name, record)
                self._links[name] = replacement
                self._agent_event(sup, "rejoin", replacement,
                                  slots=replacement.slots)
                self._expire_for(sup, phase_ctx, link, leases, pending,
                                 done, quarantined, report,
                                 "agent_restarted")
            else:
                link.record = record
        for name, link in list(self._links.items()):
            if name not in registry:
                if not link.lost:
                    self._agent_event(sup, "leave", link)
                    link.lost = True
                self._expire_for(sup, phase_ctx, link, leases, pending,
                                 done, quarantined, report, "agent_left")
                del self._links[name]
                continue
            if not pid_alive(link.pid):
                if not link.lost:
                    link.lost = True
                    self._agent_event(sup, "lost", link,
                                      reason="pid_dead")
                self._expire_for(sup, phase_ctx, link, leases, pending,
                                 done, quarantined, report, "agent_died")
            elif link.failures >= self.remote_policy.reconnect_limit \
                    and not link.lost:
                link.lost = True
                self._agent_event(sup, "lost", link,
                                  reason="unreachable")
                self._expire_for(sup, phase_ctx, link, leases, pending,
                                 done, quarantined, report,
                                 "agent_unreachable")
            elif link.lost and link.socket_path.exists() \
                    and now >= link.retry_at:
                # partition healed: the socket is back and the pid never
                # died — probe before readmitting
                if self._request(link, "ping") is not None:
                    link.lost = False
                    self._agent_event(sup, "rejoin", link,
                                      slots=link.slots)

    # -- lease lifecycle -----------------------------------------------
    def _expire_for(self, sup, phase_ctx, link: _AgentLink,
                    leases: List[_Lease], pending, done, quarantined,
                    report, reason: str) -> None:
        for lease in [l for l in leases if l.link is link]:
            self._expire(sup, phase_ctx, lease, leases, pending, done,
                         quarantined, report, reason)

    def _expire(self, sup, phase_ctx, lease: _Lease,
                leases: List[_Lease], pending, done, quarantined,
                report, reason: str) -> None:
        """Lease death: charge the chunk an attempt and re-dispatch it
        through the ordinary retry/bisect/quarantine path (speculative
        twins and already-completed chunks are dropped uncharged)."""
        leases.remove(lease)
        chunk = lease.chunk
        self._lease_event(sup, "expire", phase_ctx, chunk,
                          lease.link.name, attempt=chunk.attempts,
                          reason=reason)
        if lease.speculative or chunk.lo in done:
            return
        sup._note_failure(phase_ctx, chunk, report, "crash",
                          f"lease on agent {lease.link.name} expired "
                          f"({reason})")
        sup._requeue_or_split(phase_ctx, chunk, pending, quarantined,
                              report)

    def _complete(self, sup, phase_ctx, lease: _Lease,
                  leases: List[_Lease], done, report,
                  windows: List[Any]) -> None:
        """First result wins: later twins dedup by chunk key."""
        chunk = lease.chunk
        if chunk.lo in done:
            self._lease_event(sup, "dedup", phase_ctx, chunk,
                              lease.link.name)
            return
        sup._complete(phase_ctx, chunk, windows, done, report)
        self._lease_event(sup, "complete", phase_ctx, chunk,
                          lease.link.name, attempt=chunk.attempts,
                          speculative=lease.speculative)
        sup.metrics.counter("fabric_chunks_completed_total").inc()
        for twin in [l for l in leases if l.chunk.key == chunk.key]:
            leases.remove(twin)
            if twin.link.ready(time.monotonic()):
                self._request(twin.link, "cancel", key=chunk.key)
            self._lease_event(sup, "cancel", phase_ctx, chunk,
                              twin.link.name, reason="dedup")

    def _adopt_ready(self, sup, phase_ctx, pending, done,
                     report) -> None:
        """Fold results already sitting in the store into ``done`` —
        prior runs, speculative twins, or a partitioned agent that
        finished after its lease expired."""
        for chunk in [c for c in pending
                      if self.store.artifact_path(RESULT_KIND,
                                                  c.key).exists()]:
            windows = self.store.get(RESULT_KIND, chunk.key)
            if windows is None:
                continue            # torn entry: re-run it
            pending.remove(chunk)
            if chunk.lo in done:
                continue
            sup._complete(phase_ctx, chunk, windows, done, report)
            self._lease_event(sup, "adopt", phase_ctx, chunk, "store")

    # -- dispatch ------------------------------------------------------
    def _push_descriptor(self, phase_ctx, chunk) -> bool:
        if self.store.artifact_path(TASK_KIND, chunk.key).exists():
            return True
        return self.store.put(TASK_KIND, chunk.key, {
            "cfg": phase_ctx.cfg, "hw": phase_ctx.hw,
            "benchmark": phase_ctx.benchmark,
            "scheme": phase_ctx.scheme, "records": phase_ctx.records,
            "lo": chunk.lo, "hi": chunk.hi,
            "checkpoint": chunk.checkpoint})

    def _grant(self, sup, phase_ctx, chunk, link: _AgentLink,
               leases: List[_Lease], spool: Optional[str],
               now: float, speculative: bool) -> bool:
        if not self._push_descriptor(phase_ctx, chunk):
            return False
        attempt = chunk.attempts + (0 if speculative else 1)
        response = self._request(link, "run", key=chunk.key,
                                 attempt=max(1, attempt), spool=spool)
        if response is None or not response.get("ok"):
            return False
        if not speculative:
            chunk.attempts += 1
        lease = _Lease(chunk=chunk, link=link, granted_at=now,
                       heartbeat_at=now,
                       deadline=sup._deadline(phase_ctx, chunk),
                       speculative=speculative)
        leases.append(lease)
        self._lease_event(sup, "speculate" if speculative else "grant",
                          phase_ctx, chunk, link.name,
                          attempt=chunk.attempts,
                          speculative=speculative)
        sup.metrics.counter("fabric_leases_granted_total").inc()
        return True

    def _straggler_threshold(self, phase_ctx, chunk) -> float:
        policy = self.remote_policy
        return max(policy.min_speculate,
                   policy.speculate_factor * phase_ctx.window_estimate
                   * chunk.windows)

    # -- the phase loop ------------------------------------------------
    def run_phase(self, sup, phase_ctx, chunks, done, quarantined,
                  report, jobs: int, ctx=None) -> None:
        policy = self.remote_policy
        pending: deque = deque(sorted(chunks, key=lambda c: c.lo))
        leases: List[_Lease] = []
        no_agents_since: Optional[float] = None
        spool = (sup.events.worker_spool() if sup.events.enabled
                 else None)
        try:
            while pending or leases:
                now = time.monotonic()
                if sup.drain:
                    sup._emit("drain", phase_ctx, pending=len(pending),
                              running=len(leases))
                    for lease in leases:
                        if lease.link.ready(now):
                            self._request(lease.link, "cancel",
                                          key=lease.chunk.key)
                    report.status = "aborted"
                    return
                self._scan(sup, phase_ctx, leases, pending, done,
                           quarantined, report, now)
                self._adopt_ready(sup, phase_ctx, pending, done, report)
                live = [link for link in self._links.values()
                        if not link.lost]
                # -- fleet loss: degrade to the local dispatcher -------
                if not live and (pending or leases):
                    if no_agents_since is None:
                        no_agents_since = now
                    elif now - no_agents_since >= policy.loss_grace:
                        self._degrade(sup, phase_ctx, leases, pending,
                                      done, quarantined, report, jobs,
                                      ctx)
                        return
                else:
                    no_agents_since = None
                # -- poll leases ---------------------------------------
                now = time.monotonic()
                for lease in list(leases):
                    self._poll_lease(sup, phase_ctx, lease, leases,
                                     pending, done, quarantined,
                                     report, now)
                # -- heartbeat-silence expiry (last resort) ------------
                now = time.monotonic()
                for lease in list(leases):
                    if now - lease.heartbeat_at > policy.lease_timeout:
                        self._expire(sup, phase_ctx, lease, leases,
                                     pending, done, quarantined, report,
                                     "heartbeat_lost")
                # -- dispatch ------------------------------------------
                self._dispatch(sup, phase_ctx, leases, pending, spool,
                               time.monotonic())
                # -- speculate on stragglers ---------------------------
                self._maybe_speculate(sup, phase_ctx, leases, pending,
                                      spool, time.monotonic())
                sup._maybe_heartbeat(
                    phase_ctx, report, running=len(leases),
                    pending=len(pending),
                    workers=[link.pid for link in self._links.values()
                             if not link.lost])
                if pending or leases:
                    time.sleep(policy.poll_interval)
        finally:
            if spool is not None:
                sup.events.absorb_worker_files()

    def _poll_lease(self, sup, phase_ctx, lease: _Lease,
                    leases: List[_Lease], pending, done, quarantined,
                    report, now: float) -> None:
        link = lease.link
        if link.lost or not link.ready(now):
            return                  # expiry is handled by scan/timeout
        response = self._request(link, "status", key=lease.chunk.key)
        if response is None:
            return
        lease.heartbeat_at = now
        state = response.get("state")
        chunk = lease.chunk
        if state == "done":
            windows = self.store.get(RESULT_KIND, chunk.key)
            if windows is not None:
                self._complete(sup, phase_ctx, lease, leases, done,
                               report, windows)
                return
            state = "failed"        # agent said done but the result
            response = dict(response, exit_code=-2)    # never landed
        if state == "failed":
            leases.remove(lease)
            if lease.speculative or chunk.lo in done:
                return
            code = response.get("exit_code")
            sup._note_failure(phase_ctx, chunk, report, "crash",
                              f"agent {link.name} chunk child exited "
                              f"with {code}")
            sup._requeue_or_split(phase_ctx, chunk, pending,
                                  quarantined, report)
            return
        if state == "running":
            if lease.deadline > 0 and now > lease.deadline:
                # straggler past the watchdog allowance: cancel and
                # retry with an escalated deadline, like the pool path
                self._request(link, "cancel", key=chunk.key)
                leases.remove(lease)
                if lease.speculative or chunk.lo in done:
                    return
                report.timeouts += 1
                sup.metrics.counter(
                    "supervisor_watchdog_fired_total").inc()
                sup._note_failure(phase_ctx, chunk, report, "timeout",
                                  f"exceeded chunk deadline after "
                                  f"{chunk.attempts} attempt(s) on "
                                  f"agent {link.name}")
                sup._emit("timeout", phase_ctx, lo=chunk.lo,
                          hi=chunk.hi, attempt=chunk.attempts)
                sup._requeue_or_split(phase_ctx, chunk, pending,
                                      quarantined, report)
            return
        # "unknown": the agent has no memory of this chunk (restart
        # without a registry generation bump) — re-dispatch
        self._expire(sup, phase_ctx, lease, leases, pending, done,
                     quarantined, report, "agent_forgot")

    def _dispatch(self, sup, phase_ctx, leases: List[_Lease], pending,
                  spool: Optional[str], now: float) -> None:
        for link in self._links.values():
            if link.lost or not link.ready(now):
                continue
            busy = sum(1 for l in leases if l.link is link)
            while busy < link.slots:
                chunk = next((c for c in pending
                              if c.eligible_at <= now), None)
                if chunk is None:
                    return
                pending.remove(chunk)
                if self._grant(sup, phase_ctx, chunk, link, leases,
                               spool, now, speculative=False):
                    busy += 1
                else:
                    chunk.eligible_at = max(chunk.eligible_at,
                                            now + 0.05)
                    pending.append(chunk)
                    break           # agent (or store) balked: move on

    def _maybe_speculate(self, sup, phase_ctx, leases: List[_Lease],
                         pending, spool: Optional[str],
                         now: float) -> None:
        if pending or not leases:
            return
        keys_leased: Dict[str, int] = {}
        for lease in leases:
            keys_leased[lease.chunk.key] = (
                keys_leased.get(lease.chunk.key, 0) + 1)
        candidates = sorted(
            (l for l in leases
             if not l.speculative and keys_leased[l.chunk.key] == 1
             and now - l.granted_at
             > self._straggler_threshold(phase_ctx, l.chunk)),
            key=lambda l: l.granted_at)
        for lease in candidates:
            twin = next(
                (link for link in self._links.values()
                 if link is not lease.link and not link.lost
                 and link.ready(now)
                 and sum(1 for l in leases if l.link is link)
                 < link.slots), None)
            if twin is None:
                return
            self._grant(sup, phase_ctx, lease.chunk, twin, leases,
                        spool, now, speculative=True)

    def _degrade(self, sup, phase_ctx, leases: List[_Lease], pending,
                 done, quarantined, report, jobs: int, ctx) -> None:
        """Full-fleet loss: hand the leftovers (checkpoints intact) to
        the local dispatcher. In-flight leases are uncharged — the
        fabric died, not the chunks."""
        self._adopt_ready(sup, phase_ctx, pending, done, report)
        remaining: Dict[str, Any] = {c.key: c for c in pending}
        for lease in leases:
            chunk = lease.chunk
            if chunk.lo in done or chunk.key in remaining:
                continue
            if not lease.speculative:
                chunk.attempts = max(0, chunk.attempts - 1)
            remaining[chunk.key] = chunk
        leases.clear()
        report.downshifts += 1
        sup.metrics.counter("supervisor_downshifts_total").inc()
        sup.events.emit(
            "degradation", reason="agents_lost", phase=phase_ctx.phase,
            detail="no reachable fabric agents; falling back to the "
                   "local dispatcher")
        queue: deque = deque(sorted(remaining.values(),
                                    key=lambda c: c.lo))
        if not queue:
            return
        if jobs > 1 and not sup._force_serial:
            sup._run_pool(phase_ctx, queue, done, quarantined, report,
                          jobs, ctx=ctx)
        else:
            sup._run_serial(phase_ctx, queue, done, quarantined,
                            report, ctx=ctx)


__all__ = [
    "AGENTS_DIRNAME",
    "ChunkExecutor",
    "LocalPoolExecutor",
    "RESULT_KIND",
    "RemoteChunkExecutor",
    "RemotePolicy",
    "STORE_DIRNAME",
    "SerialChunkExecutor",
    "TASK_KIND",
    "agent_record_path",
    "agent_registry_dir",
    "agent_request",
    "agent_socket_path",
    "fabric_store",
    "read_agent_registry",
]
