"""Campaign job server: ``repro serve`` — campaigns as a service.

The one-shot CLI runs exactly one campaign per invocation. The server
turns the same machinery into a long-lived, multi-tenant queue: clients
submit compiled campaign specs (:mod:`repro.harness.spec`), the server
orders them by priority, runs each task as a ``repro campaign``
subprocess with a job-scoped ``--run-dir``, and multiplexes the
submissions over the shared worker budget and the content-addressed
artifact cache.

**Exact CLI parity by construction.** A task is not re-implemented
inside the server — it *is* the one-shot CLI: the server execs
``python -m repro.cli campaign ...`` with the argv the spec compiles to
(:func:`~repro.harness.spec.task_argv`), captures stdout/stderr to
files, and records the exit code verbatim. Whatever the one-shot
command would have printed and returned, the served job prints and
returns.

**Crash safety rides the supervisor journal.** Every task runs with
``--run-dir`` inside its job directory, so the fsync'd journal from the
resilient supervisor is the persistence layer. If the server dies
(SIGKILL included), a restart finds jobs still marked ``running``,
requeues them, and re-execs their unfinished tasks with the same argv
and run dir — which the CLI treats as a resume, re-running only the
chunks missing from the journal. Aggregates stay bit-for-bit equal to
an uninterrupted run.

On-disk layout under the serve directory::

    server.json           pid + control-socket path of the live server
    server-events.jsonl   job lifecycle trail (obs ``job`` events)
    queue/<job>.json      submitted, not yet adopted (written by client)
    jobs/<job>/job.json   adopted job state: priority, per-task states
    jobs/<job>/task-NNN-<key8>/    one task's --run-dir (journal, events)
    jobs/<job>/task-NNN-<key8>.out captured task stdout (parity surface)

Control plane: a unix domain socket speaking newline-delimited JSON
(``{"op": ...}`` in, ``{"ok": ...}`` out). The filesystem is the source
of truth — submission is an atomic rename into ``queue/``, so a client
can submit while the server is down and the job runs on the next start.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import pathlib
import signal
import sys
import tempfile
import time
import uuid
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from ..obs import NULL_LOG, EventLog
from .spec import task_argv

#: Terminal job states (no further transitions without a resume).
TERMINAL_STATES = ("complete", "complete-with-quarantine", "failed",
                   "cancelled")
#: Every job state the server writes into ``job.json``.
JOB_STATES = ("queued", "running", "interrupted") + TERMINAL_STATES

#: Task states; ``done`` (exit 0) and ``quarantine`` (exit 3) are both
#: settled — a resume re-runs only the others.
TASK_SETTLED = ("done", "quarantine")

_EXIT_QUARANTINE = 3


class ServeError(ReproError):
    """The job server could not start or a control request failed."""


# ----------------------------------------------------------------------
# shared plumbing (server + client)
# ----------------------------------------------------------------------
def atomic_write_json(path: pathlib.Path, document: Dict[str, Any]) -> None:
    """Crash-safe write: a reader sees the old document or the new one,
    never a truncation (same discipline as the supervisor journal)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, indent=2, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_json(path: pathlib.Path) -> Optional[Dict[str, Any]]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def socket_path_for(serve_dir: str | os.PathLike) -> pathlib.Path:
    """Control-socket path for a serve directory.

    Unix socket paths are capped around 108 bytes, so the socket lives
    in the temp dir under a digest of the (resolved) serve dir rather
    than inside the serve dir itself.
    """
    digest = hashlib.sha256(
        str(pathlib.Path(serve_dir).resolve()).encode()).hexdigest()[:12]
    return pathlib.Path(tempfile.gettempdir()) / f"repro-serve-{digest}.sock"


def jittered_backoff(attempt: int, base: float = 0.1, cap: float = 5.0,
                     jitter: float = 0.5, salt: str = "") -> float:
    """Deterministic exponential-backoff delay for *attempt* (1-based).

    ``min(cap, base * 2^(attempt-1))`` stretched by up to *jitter* of
    itself; the jitter fraction is a hash of *salt* and the attempt
    number, so repeated runs (and tests) see identical schedules
    without an RNG. Shared by the serve client's wait poll and the
    fabric executor's agent-reconnect loop.
    """
    delay = min(cap, base * (2.0 ** max(0, attempt - 1)))
    blob = f"{salt}:{attempt}".encode()
    word = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    return min(cap, delay * (1.0 + jitter * (word / 2.0 ** 64)))


def pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def new_job_id(name: str) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{name}-{stamp}-{uuid.uuid4().hex[:8]}"


def job_doc_from_submission(submission: Dict[str, Any]) -> Dict[str, Any]:
    """The initial ``job.json`` for a queued submission document."""
    run = submission["run"]
    tasks = []
    for index, task in enumerate(run.get("tasks", [])):
        tasks.append({
            "index": index,
            "key": task.get("key", "?"),
            "benchmark": task.get("benchmark", "?"),
            "scheme": task.get("scheme", "?"),
            "state": "pending",
            "exit_code": None,
            "run_dir": f"task-{index:03d}-{task.get('key', 'x' * 8)[:8]}",
        })
    return {
        "id": submission["id"],
        "name": submission.get("name", "campaign"),
        "priority": int(submission.get("priority", 0)),
        "submitted_at": float(submission.get("submitted_at", 0.0)),
        "state": "queued",
        "run": run,
        "tasks": tasks,
    }


def job_summary(doc: Dict[str, Any]) -> Dict[str, Any]:
    tasks = doc.get("tasks", [])
    return {
        "id": doc.get("id"), "name": doc.get("name"),
        "priority": doc.get("priority", 0),
        "state": doc.get("state", "?"),
        "tasks": len(tasks),
        "settled": sum(1 for t in tasks if t.get("state") in TASK_SETTLED),
        "quarantine": sum(1 for t in tasks
                          if t.get("state") == "quarantine"),
    }


def derive_job_state(doc: Dict[str, Any]) -> str:
    """Terminal state from the per-task exit codes."""
    states = [task.get("state") for task in doc.get("tasks", [])]
    if any(state == "failed" for state in states):
        return "failed"
    if any(state == "quarantine" for state in states):
        return "complete-with-quarantine"
    return "complete"


def _repro_pythonpath() -> str:
    """PYTHONPATH that makes ``python -m repro.cli`` importable in the
    task subprocess, regardless of how the server itself was launched."""
    src = str(pathlib.Path(__file__).resolve().parents[2])
    existing = os.environ.get("PYTHONPATH", "")
    if src in existing.split(os.pathsep):
        return existing
    return src + (os.pathsep + existing if existing else "")


def _terminate(proc: "asyncio.subprocess.Process", sig: int) -> None:
    """Signal the task's whole process group (it may own pool workers)."""
    if proc.returncode is not None:
        return
    try:
        os.killpg(os.getpgid(proc.pid), sig)
    except (ProcessLookupError, PermissionError, OSError):
        pass


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class JobServer:
    """Long-lived campaign queue over one serve directory.

    *jobs* is the shared worker budget: each concurrently-active job's
    tasks get ``jobs // max_active`` workers (at least 1) unless the
    task pins its own count. *max_jobs* / *idle_exit* are test and CI
    knobs — exit after N jobs reach a terminal state, or after the
    queue has been empty for S seconds.
    """

    def __init__(self, serve_dir: str | os.PathLike,
                 jobs: Optional[int] = None, max_active: int = 1,
                 poll_interval: float = 0.25,
                 max_jobs: Optional[int] = None,
                 idle_exit: Optional[float] = None,
                 log_events: bool = True):
        # resolve once: task run dirs must stay valid paths inside the
        # subprocess, whose cwd is the serve dir itself
        self.serve_dir = pathlib.Path(serve_dir).resolve()
        self.queue_dir = self.serve_dir / "queue"
        self.jobs_dir = self.serve_dir / "jobs"
        self.jobs = jobs
        self.max_active = max(1, int(max_active))
        self.poll_interval = max(0.01, float(poll_interval))
        self.max_jobs = max_jobs
        self.idle_exit = idle_exit
        self.log_events = log_events
        self.socket_path = socket_path_for(self.serve_dir)
        self.events = NULL_LOG
        self._docs: Dict[str, Dict[str, Any]] = {}
        self._pending: List[str] = []
        self._active: Dict[str, asyncio.Task] = {}
        self._procs: Dict[str, Any] = {}
        #: job id -> terminal state a cancellation should land in
        #: ("cancelled" from the control plane, "interrupted" from a
        #: server shutdown — the latter requeues on the next start)
        self._cancel_state: Dict[str, str] = {}
        self._completed = 0
        self._stopping = False
        self._wake: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------
    def run(self) -> int:
        """Blocking entry point (``repro serve``)."""
        return asyncio.run(self._main())

    def _emit(self, action: str, job_id: str, **fields: Any) -> None:
        self.events.emit("job", action=action, job=job_id, **fields)

    def _save(self, doc: Dict[str, Any]) -> None:
        atomic_write_json(self.jobs_dir / doc["id"] / "job.json", doc)

    def _claim_serve_dir(self) -> None:
        marker = read_json(self.serve_dir / "server.json")
        if marker and pid_alive(int(marker.get("pid", -1))) \
                and int(marker.get("pid", -1)) != os.getpid():
            raise ServeError(
                f"another server (pid {marker['pid']}) is already "
                f"serving {self.serve_dir}")
        if self.socket_path.exists():
            self.socket_path.unlink()    # stale socket from a dead server
        atomic_write_json(self.serve_dir / "server.json", {
            "pid": os.getpid(), "socket": str(self.socket_path),
            "started_at": time.time(), "jobs": self.jobs,
            "max_active": self.max_active})

    def _startup_sweep(self) -> None:
        """Adopt what a previous server left behind: jobs that were
        ``running``/``interrupted`` when it died are requeued (their
        re-exec is a journal resume), ``queued`` jobs are re-adopted."""
        for job_json in sorted(self.jobs_dir.glob("*/job.json")):
            doc = read_json(job_json)
            if doc is None or "id" not in doc:
                continue
            self._docs[doc["id"]] = doc
            if doc.get("state") in ("running", "interrupted"):
                for task in doc.get("tasks", []):
                    if task.get("state") not in TASK_SETTLED:
                        task["state"] = "pending"
                        task["exit_code"] = None
                doc["state"] = "queued"
                self._save(doc)
                self._pending.append(doc["id"])
                self._emit("requeued", doc["id"], reason="server-restart")
            elif doc.get("state") == "queued":
                self._pending.append(doc["id"])

    async def _main(self) -> int:
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._claim_serve_dir()
        if self.log_events:
            self.events = EventLog(self.serve_dir / "server-events.jsonl")
        self._wake = asyncio.Event()
        self._startup_sweep()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path))
        print(f"serving {self.serve_dir} (socket {self.socket_path})",
              file=sys.stderr)
        idle_since = time.monotonic()
        try:
            while not self._stopping:
                self._scan_queue()
                self._launch_ready()
                if self._pending or self._active:
                    idle_since = time.monotonic()
                if (self.max_jobs is not None
                        and self._completed >= self.max_jobs
                        and not self._active):
                    break
                if (self.idle_exit is not None and not self._active
                        and not self._pending
                        and time.monotonic() - idle_since
                        >= self.idle_exit):
                    break
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           timeout=self.poll_interval)
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
        finally:
            await self._shutdown(server)
        return 0

    def _request_stop(self) -> None:
        self._stopping = True
        if self._wake is not None:
            self._wake.set()

    async def _shutdown(self, server: asyncio.AbstractServer) -> None:
        # interrupt (not cancel) in-flight jobs: a restart requeues them
        for job_id, task in list(self._active.items()):
            self._cancel_state.setdefault(job_id, "interrupted")
            task.cancel()
        if self._active:
            await asyncio.gather(*self._active.values(),
                                 return_exceptions=True)
        server.close()
        await server.wait_closed()
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        try:
            (self.serve_dir / "server.json").unlink()
        except OSError:
            pass
        if self.events is not NULL_LOG:
            self.events.close()

    # -- scheduling ----------------------------------------------------
    def _scan_queue(self) -> None:
        for queue_file in sorted(self.queue_dir.glob("*.json")):
            submission = read_json(queue_file)
            if submission is None or "id" not in submission \
                    or "run" not in submission:
                continue        # torn write in progress; next poll
            job_id = str(submission["id"])
            if job_id not in self._docs:
                doc = job_doc_from_submission(submission)
                self._docs[job_id] = doc
                self._save(doc)
                self._pending.append(job_id)
                self._emit("adopted", job_id, name=doc["name"],
                           priority=doc["priority"])
            try:
                queue_file.unlink()
            except OSError:
                pass

    def _launch_ready(self) -> None:
        while self._pending and len(self._active) < self.max_active \
                and not self._stopping:
            # highest priority first, FIFO within a priority band
            self._pending.sort(
                key=lambda jid: (-self._docs[jid].get("priority", 0),
                                 self._docs[jid].get("submitted_at", 0.0),
                                 jid))
            job_id = self._pending.pop(0)
            doc = self._docs[job_id]
            if doc.get("state") != "queued":
                continue
            self._active[job_id] = asyncio.get_running_loop().create_task(
                self._run_job(job_id))

    def _task_jobs(self, task: Dict[str, Any]) -> Optional[int]:
        if task.get("jobs") is not None:
            return int(task["jobs"])
        if self.jobs is not None:
            return max(1, int(self.jobs) // self.max_active)
        return None

    async def _run_job(self, job_id: str) -> None:
        doc = self._docs[job_id]
        doc["state"] = "running"
        self._save(doc)
        self._emit("started", job_id, name=doc.get("name", "?"))
        try:
            for task_doc in doc["tasks"]:
                if task_doc.get("state") in TASK_SETTLED:
                    continue
                if self._stopping:
                    raise asyncio.CancelledError
                exit_code = await self._run_task(doc, task_doc)
                task_doc["exit_code"] = exit_code
                task_doc["state"] = (
                    "done" if exit_code == 0
                    else "quarantine" if exit_code == _EXIT_QUARANTINE
                    else "failed")
                self._save(doc)
                self._emit("task_done", job_id, task=task_doc["key"],
                           index=task_doc["index"], exit_code=exit_code)
                if task_doc["state"] == "failed":
                    break
            doc["state"] = derive_job_state(doc)
        except asyncio.CancelledError:
            state = self._cancel_state.pop(job_id, "interrupted")
            doc["state"] = state
            for task_doc in doc["tasks"]:
                if task_doc.get("state") == "running":
                    task_doc["state"] = ("cancelled"
                                         if state == "cancelled"
                                         else "interrupted")
            self._save(doc)
            self._emit("cancelled" if state == "cancelled"
                       else "interrupted", job_id)
            return
        finally:
            self._active.pop(job_id, None)
            self._completed += 1
            if self._wake is not None:
                self._wake.set()
        self._save(doc)
        self._emit("done", job_id, state=doc["state"])

    async def _run_task(self, doc: Dict[str, Any],
                        task_doc: Dict[str, Any]) -> int:
        job_dir = self.jobs_dir / doc["id"]
        run_dir = job_dir / task_doc["run_dir"]
        task = doc["run"]["tasks"][task_doc["index"]]
        argv = task_argv(task, run_dir=run_dir,
                         jobs=self._task_jobs(task))
        task_doc["state"] = "running"
        task_doc["argv"] = ["repro"] + argv
        self._save(doc)
        self._emit("task_start", doc["id"], task=task_doc["key"],
                   index=task_doc["index"])
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        out = open(job_dir / (task_doc["run_dir"] + ".out"), "wb")
        err = open(job_dir / (task_doc["run_dir"] + ".err"), "ab")
        try:
            # cwd is inherited on purpose: the default artifact cache is
            # cwd-relative, so served tasks share the same cache a
            # one-shot `repro campaign` from this directory would use
            proc = await asyncio.create_subprocess_exec(
                sys.executable, "-m", "repro.cli", *argv,
                stdout=out, stderr=err, env=env,
                start_new_session=True)
            self._procs[doc["id"]] = proc
            task_doc["pid"] = proc.pid    # its own session/process group
            self._save(doc)
            try:
                return await proc.wait()
            except asyncio.CancelledError:
                # graceful first: the supervisor drains and journals
                _terminate(proc, signal.SIGTERM)
                try:
                    await asyncio.wait_for(proc.wait(), timeout=10.0)
                except asyncio.TimeoutError:
                    _terminate(proc, signal.SIGKILL)
                    await proc.wait()
                raise
            finally:
                self._procs.pop(doc["id"], None)
        finally:
            out.close()
            err.close()

    # -- control plane -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            try:
                request = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                request = {}
            response = await self._dispatch(
                request if isinstance(request, dict) else {})
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "active": len(self._active),
                    "queued": len(self._pending)}
        if op == "poke":
            if self._wake is not None:
                self._wake.set()
            return {"ok": True}
        if op == "list":
            return {"ok": True,
                    "jobs": [job_summary(doc) for doc in
                             sorted(self._docs.values(),
                                    key=lambda d: d.get("submitted_at",
                                                        0.0))]}
        if op == "status":
            return self._op_status(str(request.get("job", "")))
        if op == "cancel":
            return await self._op_cancel(str(request.get("job", "")))
        if op == "resume":
            return self._op_resume(str(request.get("job", "")))
        if op == "shutdown":
            self._request_stop()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_status(self, job_id: str) -> Dict[str, Any]:
        doc = self._docs.get(job_id)
        if doc is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        response = {"ok": True, "job": doc}
        running = next((t for t in doc.get("tasks", [])
                        if t.get("state") == "running"), None)
        if running is not None:
            run_dir = self.jobs_dir / job_id / running["run_dir"]
            if run_dir.is_dir():
                from ..obs.stream import CampaignMonitor
                response["progress"] = (
                    CampaignMonitor(run_dir).poll().as_json())
        return response

    async def _op_cancel(self, job_id: str) -> Dict[str, Any]:
        doc = self._docs.get(job_id)
        if doc is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        task = self._active.get(job_id)
        if task is not None:
            self._cancel_state[job_id] = "cancelled"
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return {"ok": True, "state": doc.get("state")}
        if doc.get("state") == "queued":
            if job_id in self._pending:
                self._pending.remove(job_id)
            doc["state"] = "cancelled"
            self._save(doc)
            self._emit("cancelled", job_id, reason="queued")
            return {"ok": True, "state": "cancelled"}
        return {"ok": False,
                "error": f"job {job_id} is {doc.get('state')!r}, "
                         f"not running or queued"}

    def _op_resume(self, job_id: str) -> Dict[str, Any]:
        doc = self._docs.get(job_id)
        if doc is None:
            disk = read_json(self.jobs_dir / job_id / "job.json")
            if disk is None:
                return {"ok": False, "error": f"unknown job {job_id!r}"}
            self._docs[job_id] = doc = disk
        if doc.get("state") in ("running", "queued"):
            return {"ok": True, "state": doc["state"]}
        for task_doc in doc.get("tasks", []):
            if task_doc.get("state") not in TASK_SETTLED:
                task_doc["state"] = "pending"
                task_doc["exit_code"] = None
        doc["state"] = "queued"
        self._save(doc)
        if job_id not in self._pending:
            self._pending.append(job_id)
        self._emit("requeued", job_id, reason="resume")
        if self._wake is not None:
            self._wake.set()
        return {"ok": True, "state": "queued"}


__all__ = [
    "JOB_STATES",
    "JobServer",
    "ServeError",
    "TASK_SETTLED",
    "TERMINAL_STATES",
    "atomic_write_json",
    "derive_job_state",
    "jittered_backoff",
    "job_doc_from_submission",
    "job_summary",
    "new_job_id",
    "pid_alive",
    "read_json",
    "socket_path_for",
]
