"""Fabric worker agent: ``repro agent`` — remote chunk execution.

An agent is the worker side of the distributed campaign fabric
(:mod:`repro.harness.executor`). It is deliberately tiny and stateless:
it registers itself in ``<fabric>/agents/<name>.json`` (atomic writes,
heartbeat-refreshed), listens on a unix domain socket speaking the same
newline-JSON protocol as the job server's control plane, and runs each
leased chunk in a forked child process. The child fetches its
self-contained descriptor from the fabric's content-addressed store,
classifies the windows with the exact code path a local pool worker
uses (:func:`repro.harness.parallel.run_chunk_descriptor`), and pushes
the result back under the chunk key — so results are bit-for-bit
interchangeable with local execution, and a crashed child costs nothing
but a lease.

Control ops (``{"op": ...}`` in, one JSON line out):

- ``ping``     → liveness + ``{slots, busy, completed}``
- ``run``      → fork a chunk child for ``key`` (``attempt`` feeds the
  chaos probe; ``spool`` points the child's obs worker spool at the
  campaign's event log so fault-audit trails survive remoting)
- ``status``   → ``{"state": running|done|failed|unknown, exit_code}``
- ``cancel``   → SIGKILL the child for ``key``
- ``shutdown`` → clean exit (registry record and socket removed)

Failure semantics the executor relies on: a SIGKILLed agent leaves its
registry record behind with a dead pid (detected immediately); removing
the socket file models a network partition (the agent keeps heartbeating
the registry but is unreachable); a crashed chunk child is reported as
``failed`` with its exit code and charged to the chunk, not the agent.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import sys
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..obs.events import WORKER_DIR_ENV
from . import parallel as _parallel
from .cache import ArtifactCache
from .executor import (RESULT_KIND, TASK_KIND, agent_record_path,
                       agent_registry_dir, agent_request,
                       agent_socket_path, fabric_store,
                       read_agent_registry)
from .server import atomic_write_json, pid_alive, read_json


class AgentError(ReproError):
    """The agent could not start (name collision, bad fabric dir)."""


def _chunk_child(store_root: str, key: str, attempt: int,
                 spool: Optional[str]) -> None:
    """Forked child entry point: fetch, classify, push, exit.

    Exit codes: 0 success, 7 descriptor missing, 8 result push failed;
    anything else (signals included) is a chunk failure the executor
    charges through the ordinary retry path.
    """
    if spool:
        os.environ[WORKER_DIR_ENV] = spool
    store = ArtifactCache(store_root)
    descriptor = store.get(TASK_KIND, key)
    if descriptor is None:
        os._exit(7)
    # local import: supervisor imports executor (which agent imports) —
    # resolving chaos_probe lazily keeps the module graph acyclic
    from .supervisor import chaos_probe
    chaos_probe(descriptor["benchmark"],
                descriptor["scheme"] or "baseline",
                descriptor["lo"], descriptor["hi"], attempt)
    windows = _parallel.run_chunk_descriptor(descriptor)
    sys.exit(0 if store.put(RESULT_KIND, key, windows) else 8)


class AgentDaemon:
    """One fabric worker: registry record + control socket + children.

    *slots* bounds concurrent chunk children. *idle_exit* (seconds with
    no running chunk) is a test/CI knob so stray agents reap
    themselves. The daemon is single-campaign-agnostic: any number of
    campaigns may lease chunks from it concurrently, keyed by the
    content-addressed chunk key.
    """

    def __init__(self, fabric_dir: str | os.PathLike,
                 name: Optional[str] = None, slots: int = 1,
                 idle_exit: Optional[float] = None,
                 heartbeat_interval: float = 1.0,
                 poll_interval: float = 0.05):
        self.fabric_dir = pathlib.Path(fabric_dir).resolve()
        self.name = name or f"agent-{os.getpid()}"
        self.slots = max(1, int(slots))
        self.idle_exit = idle_exit
        self.heartbeat_interval = max(0.05, float(heartbeat_interval))
        self.poll_interval = max(0.01, float(poll_interval))
        self.store = fabric_store(self.fabric_dir)
        self.socket_path = agent_socket_path(self.fabric_dir, self.name)
        self.record_path = agent_record_path(self.fabric_dir, self.name)
        self._started_at = time.time()
        self._children: Dict[str, Tuple[Any, int, float]] = {}
        self._results: Dict[str, int] = {}
        self._completed = 0
        self._stopping = False

    # -- lifecycle -----------------------------------------------------
    def run(self) -> int:
        """Blocking entry point (``repro agent start``)."""
        return asyncio.run(self._main())

    def _write_record(self) -> None:
        atomic_write_json(self.record_path, {
            "name": self.name, "pid": os.getpid(),
            "socket": str(self.socket_path), "slots": self.slots,
            "busy": len(self._children), "completed": self._completed,
            "started_at": self._started_at,
            "heartbeat_at": time.time()})

    def _claim(self) -> None:
        agent_registry_dir(self.fabric_dir).mkdir(parents=True,
                                                  exist_ok=True)
        self.store.root.mkdir(parents=True, exist_ok=True)
        existing = read_json(self.record_path)
        if existing and pid_alive(int(existing.get("pid", -1))) \
                and int(existing.get("pid", -1)) != os.getpid():
            raise AgentError(
                f"agent {self.name!r} (pid {existing['pid']}) is "
                f"already registered in {self.fabric_dir}")
        if self.socket_path.exists():
            self.socket_path.unlink()    # stale socket of a dead agent
        self._write_record()

    async def _main(self) -> int:
        self._claim()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path))
        print(f"agent {self.name} serving {self.fabric_dir} "
              f"(socket {self.socket_path}, slots {self.slots})",
              file=sys.stderr)
        last_beat = 0.0
        idle_since = time.monotonic()
        try:
            while not self._stopping:
                self._reap()
                now = time.monotonic()
                if self._children:
                    idle_since = now
                if now - last_beat >= self.heartbeat_interval:
                    self._write_record()
                    last_beat = now
                if (self.idle_exit is not None
                        and now - idle_since >= self.idle_exit):
                    break
                await asyncio.sleep(self.poll_interval)
        finally:
            for key, (proc, _attempt, _started) in \
                    list(self._children.items()):
                try:
                    proc.kill()
                except (OSError, AttributeError):
                    pass
            server.close()
            await server.wait_closed()
            for stale in (self.socket_path, self.record_path):
                try:
                    stale.unlink()
                except OSError:
                    pass
        return 0

    def _request_stop(self) -> None:
        self._stopping = True

    # -- children ------------------------------------------------------
    def _reap(self) -> None:
        for key, (proc, _attempt, _started) in \
                list(self._children.items()):
            if proc.is_alive():
                continue
            del self._children[key]
            code = proc.exitcode if proc.exitcode is not None else -1
            self._results[key] = code
            if code == 0:
                self._completed += 1

    # -- control plane -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            try:
                request = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                request = {}
            response = self._dispatch(
                request if isinstance(request, dict) else {})
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            self._reap()
            return {"ok": True, "pid": os.getpid(), "name": self.name,
                    "slots": self.slots, "busy": len(self._children),
                    "completed": self._completed}
        if op == "run":
            return self._op_run(request)
        if op == "status":
            return self._op_status(str(request.get("key", "")))
        if op == "cancel":
            return self._op_cancel(str(request.get("key", "")))
        if op == "shutdown":
            self._request_stop()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _op_run(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = str(request.get("key", ""))
        self._reap()
        if key in self._children:
            return {"ok": True, "state": "running"}
        if self.store.artifact_path(RESULT_KIND, key).exists():
            self._results[key] = 0
            return {"ok": True, "state": "done"}
        if len(self._children) >= self.slots:
            return {"ok": False, "error": "busy",
                    "busy": len(self._children)}
        if not self.store.artifact_path(TASK_KIND, key).exists():
            return {"ok": False,
                    "error": f"no descriptor for chunk {key[:12]}"}
        attempt = max(1, int(request.get("attempt", 1)))
        spool = request.get("spool")
        proc = _parallel._mp_context().Process(
            target=_chunk_child,
            args=(str(self.store.root), key, attempt,
                  str(spool) if spool else None),
            daemon=True)
        proc.start()
        self._results.pop(key, None)
        self._children[key] = (proc, attempt, time.monotonic())
        return {"ok": True, "state": "running"}

    def _op_status(self, key: str) -> Dict[str, Any]:
        self._reap()
        if key in self._children:
            return {"ok": True, "state": "running", "exit_code": None}
        code = self._results.get(key)
        if code is not None:
            if code == 0 or self.store.artifact_path(RESULT_KIND,
                                                     key).exists():
                return {"ok": True, "state": "done", "exit_code": code}
            return {"ok": True, "state": "failed", "exit_code": code}
        if self.store.artifact_path(RESULT_KIND, key).exists():
            return {"ok": True, "state": "done", "exit_code": None}
        return {"ok": True, "state": "unknown", "exit_code": None}

    def _op_cancel(self, key: str) -> Dict[str, Any]:
        entry = self._children.pop(key, None)
        if entry is None:
            return {"ok": True, "state": "idle"}
        proc, _attempt, _started = entry
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass
        self._results[key] = -9
        return {"ok": True, "state": "cancelled"}


# ----------------------------------------------------------------------
# CLI helpers (``repro agent list|stop``)
# ----------------------------------------------------------------------
def list_agents(fabric_dir: str | os.PathLike) -> list:
    """Registry snapshot with liveness/reachability resolved."""
    rows = []
    for name, record in read_agent_registry(fabric_dir).items():
        pid = int(record.get("pid", -1))
        alive = pid_alive(pid)
        socket_path = str(record.get("socket", ""))
        response = (agent_request(socket_path, "ping", timeout=2.0)
                    if alive else None)
        rows.append({
            "name": name, "pid": pid, "slots": record.get("slots", 1),
            "busy": (response or {}).get("busy",
                                         record.get("busy", 0)),
            "completed": (response or {}).get(
                "completed", record.get("completed", 0)),
            "state": ("live" if response is not None
                      else "unreachable" if alive else "dead")})
    return rows


def stop_agents(fabric_dir: str | os.PathLike,
                names: Optional[list] = None) -> list:
    """Ask agents to shut down (socket first, SIGTERM fallback for
    reachable-pid-but-dead-socket agents); returns per-agent outcomes."""
    registry = read_agent_registry(fabric_dir)
    targets = names or sorted(registry)
    outcomes = []
    for name in targets:
        record = registry.get(name)
        if record is None:
            outcomes.append({"name": name, "result": "unknown"})
            continue
        response = agent_request(str(record.get("socket", "")),
                                 "shutdown", timeout=2.0)
        if response is not None and response.get("ok"):
            outcomes.append({"name": name, "result": "stopped"})
            continue
        pid = int(record.get("pid", -1))
        if pid_alive(pid):
            try:
                os.kill(pid, signal.SIGTERM)
                outcomes.append({"name": name, "result": "signalled"})
                continue
            except OSError:
                pass
        # dead agent: sweep the stale registry record
        try:
            agent_record_path(fabric_dir, name).unlink()
        except OSError:
            pass
        outcomes.append({"name": name, "result": "swept"})
    return outcomes


__all__ = [
    "AgentDaemon",
    "AgentError",
    "list_agents",
    "stop_agents",
]
