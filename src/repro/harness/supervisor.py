"""Fault-tolerant campaign execution: the resilient supervisor.

Large tandem campaigns (thousands of windows per benchmark x scheme)
must survive the failures they study: a worker segfault, a hung window
or a Ctrl-C used to kill the whole run and discard every in-flight
result. The :class:`Supervisor` wraps the window-chunk dispatcher from
:mod:`repro.harness.parallel` with five layers of protection:

- **retry with exponential backoff + jitter** — a chunk whose task
  raises, or whose worker dies (``BrokenProcessPool``), is re-enqueued
  up to ``max_retries`` times on a rebuilt pool; every attempt is
  recorded as a ``supervisor`` event in :mod:`repro.obs`;
- **watchdog timeouts** — each chunk gets a soft deadline derived from
  the golden-pass throughput estimate (the same numbers that feed
  :class:`~repro.faults.campaign.ThroughputRecord`), tightened by the
  hard ``chunk_timeout`` when one is configured; a chunk past its
  deadline is cancelled (the pool is torn down) and retried with an
  escalated deadline;
- **poison-window quarantine** — a chunk that fails deterministically
  is bisected down to the offending window(s), which are quarantined
  into ``<run-dir>/poisoned.jsonl`` (config digest, window coordinates,
  traceback) while the rest of the campaign completes;
- **crash-safe journal + resume** — completed chunks are appended to a
  fsync'd JSONL journal keyed by the same content-addressed digests the
  artifact cache uses, with the chunk results pickled under
  ``<run-dir>/chunks/``; SIGINT/SIGTERM trigger a graceful drain that
  flushes partial results and obs spools, and ``repro resume
  <run-dir>`` restarts the campaign from the journal, re-running only
  the missing chunks — bit-for-bit equal to an uninterrupted run;
- **graceful degradation** — on repeated pool failure the supervisor
  downshifts ``jobs`` (8 -> 4 -> ... -> 1 -> in-process) instead of
  aborting, emitting a ``degradation`` event at each step.

Chunk dispatch itself is pluggable: the supervisor hands each phase's
chunk queue to a :class:`~repro.harness.executor.ChunkExecutor`
(in-process, local pool, or the distributed fabric's remote executor —
see :mod:`repro.harness.executor`). All completions and failures flow
back through the same ``_complete``/``_note_failure``/quarantine/journal
machinery, so results — and ``repro resume`` — are bit-for-bit identical
across executor kinds.

Chaos knobs (for the chaos-campaign CI job and tests, never set in
production runs) are read by the *worker-side* task only:

- ``REPRO_CHAOS_CRASH_RATE`` — probability in [0, 1] that a chunk
  attempt SIGKILLs its worker; the decision is a deterministic hash of
  the chunk coordinates *and the attempt number*, so retries converge;
- ``REPRO_CHAOS_POISON`` — comma-separated window positions that
  SIGKILL the worker on *every* attempt (deterministic poison);
- ``REPRO_CHAOS_HANG`` — comma-separated window positions whose chunk
  sleeps forever, exercising the watchdog.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import signal
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..faults.classifier import WindowResult
from ..faults.model import FaultRecord
from ..obs.events import NULL_LOG, WORKER_DIR_ENV
from ..obs.manifest import config_digest
from ..obs.metrics import NULL_METRICS
from . import parallel as _parallel
from .cache import ArtifactCache
from .executor import (ChunkExecutor, LocalPoolExecutor,
                       SerialChunkExecutor)

#: Campaign exit codes (``repro campaign`` / ``repro resume``).
EXIT_COMPLETE = 0
EXIT_QUARANTINE = 3
EXIT_ABORTED = 4

CHAOS_CRASH_RATE_ENV = "REPRO_CHAOS_CRASH_RATE"
CHAOS_POISON_ENV = "REPRO_CHAOS_POISON"
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG"


class CampaignAborted(ReproError):
    """A supervised campaign drained before completing (SIGINT/SIGTERM).

    The journal under ``run_dir`` holds every completed chunk; ``repro
    resume <run_dir>`` finishes the campaign.
    """

    def __init__(self, phase: str, run_dir: Optional[pathlib.Path]):
        self.phase = phase
        self.run_dir = run_dir
        hint = (f"; resume with: repro resume {run_dir}" if run_dir else "")
        super().__init__(f"campaign drained during {phase} phase{hint}")


# ----------------------------------------------------------------------
# chaos injection (worker side, env-gated, off in production)
# ----------------------------------------------------------------------
def _chaos_fraction(*coords: Any) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from coordinates."""
    blob = ":".join(str(c) for c in coords).encode()
    word = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    return word / 2.0 ** 64


def _chaos_indices(env: str, label: str) -> List[int]:
    """Window positions listed in *env*: bare integers apply to every
    phase, ``<scheme-label>:<index>`` tokens only to that phase's
    fan-out (e.g. ``baseline:4`` poisons characterisation window 4 but
    leaves the coverage replay alone)."""
    indices = []
    for token in os.environ.get(env, "").split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            want, _, token = token.partition(":")
            if want != label:
                continue
        indices.append(int(token))
    return indices


def chaos_probe(benchmark: str, scheme: str, lo: int, hi: int,
                attempt: int) -> None:
    """Kill or hang this worker according to the chaos environment.

    Poison windows (``REPRO_CHAOS_POISON``) crash on every attempt;
    random crashes (``REPRO_CHAOS_CRASH_RATE``) hash the attempt number
    into the decision so a retried chunk eventually survives.
    """
    if any(lo <= w < hi for w in _chaos_indices(CHAOS_POISON_ENV, scheme)):
        os.kill(os.getpid(), signal.SIGKILL)
    if any(lo <= w < hi for w in _chaos_indices(CHAOS_HANG_ENV, scheme)):
        time.sleep(3600.0)
    rate = float(os.environ.get(CHAOS_CRASH_RATE_ENV, "0") or 0.0)
    if rate > 0 and _chaos_fraction(benchmark, scheme, lo, hi,
                                    attempt) < rate:
        os.kill(os.getpid(), signal.SIGKILL)


def supervised_chunk_task(args) -> List[WindowResult]:
    """Pool entry point: the chaos probe, then the ordinary chunk task.

    ``args`` is ``(window_chunk_task args, attempt)`` — the attempt
    number exists only to parameterise the chaos probe; the classified
    results are attempt-invariant.
    """
    inner, attempt = args
    _cfg, _hw, benchmark, scheme, _records, lo, hi, _checkpoint = inner
    chaos_probe(benchmark, scheme or "baseline", lo, hi, attempt)
    return _parallel.window_chunk_task(inner)


# ----------------------------------------------------------------------
# policy and reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/quarantine knobs for one supervised campaign."""

    #: Extra attempts after the first, per chunk.
    max_retries: int = 3
    #: Extra attempts for bisected sub-chunks (determinism is already
    #: suspected by the time a chunk is bisected).
    bisect_retries: int = 1
    #: Hard per-chunk wall-clock cap in seconds (None = soft only).
    chunk_timeout: Optional[float] = None
    #: Soft deadline = max(min_soft_timeout, factor x estimated chunk
    #: seconds from the golden pass); <= 0 disables the soft deadline.
    soft_timeout_factor: float = 32.0
    min_soft_timeout: float = 30.0
    #: Exponential backoff between attempts: base * 2^(attempt-1),
    #: capped, plus deterministic jitter (a fraction of the delay).
    backoff_base: float = 0.1
    backoff_max: float = 5.0
    backoff_jitter: float = 0.5
    #: Target windows per chunk — the journal (and retry) granularity.
    #: The chunk count is ``max(jobs, ceil(windows / chunk_windows))``.
    chunk_windows: int = 8
    #: Consecutive pool failures tolerated before downshifting jobs.
    pool_break_limit: int = 3
    #: Seconds to wait for in-flight chunks during a graceful drain.
    drain_grace: float = 30.0
    #: Seconds between ``heartbeat`` events while a fan-out is in
    #: flight (worker health for ``repro top``); <= 0 disables them.
    heartbeat_interval: float = 5.0


@dataclass
class QuarantineRecord:
    """One poisoned window: the coordinates needed to reproduce it."""

    phase: str
    benchmark: str
    scheme: str
    index: int                   # position in the phase's fault list
    fault_index: int             # FaultRecord.index
    site: str
    bit: int
    inject_at_commit: int
    attempts: int
    reason: str                  # "crash" | "exception" | "timeout"
    error: str                   # last traceback / failure description
    config_digest: str

    def as_json(self) -> Dict[str, Any]:
        return {"type": "quarantine", **asdict(self)}


@dataclass
class PhaseReport:
    """What the supervisor did for one campaign phase."""

    phase: str
    benchmark: str
    scheme: str
    status: str = "complete"     # | "complete-with-quarantine" | "aborted"
    windows: List[WindowResult] = field(default_factory=list)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    downshifts: int = 0
    chunks_run: int = 0
    chunks_resumed: int = 0
    #: Live-progress coordinates behind the ``campaign_progress``
    #: counter trail (windows_done starts at the resumed baseline).
    windows_total: int = 0
    windows_done: int = 0


# ----------------------------------------------------------------------
# crash-safe journal
# ----------------------------------------------------------------------
class CampaignJournal:
    """Append-only, fsync'd JSONL journal of campaign progress.

    Every line is one JSON object with a ``type`` field (``plan``,
    ``chunk_done``, ``quarantine``, ``phase_done``, ``resume``,
    ``drain``). Appends are flushed *and fsync'd* so a SIGKILL never
    loses an acknowledged chunk; a truncated trailing line (killed
    mid-append) becomes a synthesized ``truncated_tail`` note — exactly
    the :func:`repro.obs.events.read_events` contract — while corruption
    anywhere *before* the tail is a hard error (an fsync'd append-only
    journal cannot legitimately contain one).
    """

    def __init__(self, run_dir: str | os.PathLike):
        self.run_dir = pathlib.Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / "journal.jsonl"
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    @staticmethod
    def read(run_dir: str | os.PathLike) -> List[Dict[str, Any]]:
        """Parsed journal records; a torn final line (SIGKILL
        mid-append) is reported as a ``truncated_tail`` note instead of
        failing the resume. Resume replay ignores the note (it only
        folds ``chunk_done``/``quarantine``); ``repro report`` surfaces
        it so the interruption stays visible."""
        path = pathlib.Path(run_dir) / "journal.jsonl"
        records: List[Dict[str, Any]] = []
        if not path.exists():
            return records
        with open(path, encoding="utf-8", newline="") as handle:
            content = handle.read()
        lines = content.split("\n")
        tail = lines.pop()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: not JSON: {exc}") from None
        if tail.strip():
            try:
                records.append(json.loads(tail))
            except json.JSONDecodeError:
                records.append({"type": "truncated_tail",
                                "line": len(lines) + 1,
                                "bytes": len(tail.encode("utf-8"))})
        return records


# ----------------------------------------------------------------------
# internal chunk bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Chunk:
    lo: int
    hi: int
    key: str
    checkpoint: Optional[Any]
    max_attempts: int
    attempts: int = 0
    eligible_at: float = 0.0     # monotonic timestamp gating the retry
    last_reason: str = ""
    last_error: str = ""
    #: set when this chunk was in flight during a pool break; suspects
    #: are re-run solo so a repeat crash is unambiguously attributable
    suspect: bool = False
    #: serial-path retry stash: ``(golden_clone, resume_commit)`` taken
    #: at this chunk's start boundary, so a backing-off chunk can be
    #: skipped (letting later chunks advance the live golden core) and
    #: still restart from its own boundary on revisit
    rewind: Optional[Tuple[Any, int]] = None

    @property
    def windows(self) -> int:
        return self.hi - self.lo


@dataclass
class _Phase:
    """Immutable coordinates shared by every chunk of one fan-out."""

    cfg: Any
    hw: Any
    benchmark: str
    scheme: Optional[str]
    label: str
    phase: str
    records: List[FaultRecord]
    digest: str
    window_estimate: float       # golden-pass seconds per window

    def task_args(self, chunk: _Chunk) -> Tuple:
        return ((self.cfg, self.hw, self.benchmark, self.scheme,
                 self.records, chunk.lo, chunk.hi, chunk.checkpoint),
                chunk.attempts)


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------
class Supervisor:
    """Fault-tolerant execution layer over the window-chunk dispatcher.

    One instance supervises one campaign (both phases). With *run_dir*
    it journals completed chunks and pickles their results under
    ``run_dir/chunks/``, enabling crash-safe resume; without it the
    retry/timeout/quarantine machinery still runs, but an interrupted
    campaign cannot be resumed.
    """

    def __init__(self, policy: Optional[SupervisorPolicy] = None,
                 run_dir: Optional[str | os.PathLike] = None,
                 jobs: Optional[int] = None, events=None, metrics=None,
                 executor: Optional[ChunkExecutor] = None):
        self.policy = policy or SupervisorPolicy()
        self.jobs = max(1, jobs) if jobs is not None else None
        #: Explicit dispatch override (e.g. the fabric's remote
        #: executor); None picks serial/pool from the job count.
        self.executor = executor
        self.events = events if events is not None else NULL_LOG
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.run_dir = pathlib.Path(run_dir) if run_dir else None
        self.journal: Optional[CampaignJournal] = None
        self.chunk_store: Optional[ArtifactCache] = None
        self._journal_chunks: List[Dict[str, Any]] = []
        self._journal_quarantine: List[Dict[str, Any]] = []
        if self.run_dir is not None:
            for record in CampaignJournal.read(self.run_dir):
                if record.get("type") == "chunk_done":
                    self._journal_chunks.append(record)
                elif record.get("type") == "quarantine":
                    self._journal_quarantine.append(record)
            self.journal = CampaignJournal(self.run_dir)
            self.chunk_store = ArtifactCache(self.run_dir / "chunks")
            if self._journal_chunks or self._journal_quarantine:
                self.journal.append({
                    "type": "resume",
                    "chunks": len(self._journal_chunks),
                    "quarantined": len(self._journal_quarantine)})
        self._keyer = self.chunk_store or ArtifactCache(
            pathlib.Path(".") / ".repro-keys")   # key derivation only
        self.reports: List[PhaseReport] = []
        self.drain = False
        self._force_serial = False
        self._jitter_salt = 0
        self._last_heartbeat = 0.0

    # -- lifecycle -----------------------------------------------------
    def bind(self, jobs: Optional[int] = None, events=None,
             metrics=None) -> None:
        """Late wiring from the owning ExperimentContext."""
        if self.jobs is None and jobs is not None:
            self.jobs = max(1, jobs)
        if events is not None and self.events is NULL_LOG:
            self.events = events
        if metrics is not None and self.metrics is NULL_METRICS:
            self.metrics = metrics

    def request_drain(self) -> None:
        """Stop submitting new chunks; flush and abort gracefully."""
        self.drain = True

    @contextmanager
    def graceful(self) -> Iterator["Supervisor"]:
        """Install SIGINT/SIGTERM handlers that trigger a graceful drain
        (a second signal aborts hard via KeyboardInterrupt)."""
        previous: Dict[int, Any] = {}

        def handler(signum, frame):
            if self.drain:
                raise KeyboardInterrupt
            self.request_drain()

        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                previous[sig] = signal.signal(sig, handler)
        except ValueError:          # not the main thread: run unguarded
            previous = {}
        try:
            yield self
        finally:
            for sig, old in previous.items():
                signal.signal(sig, old)

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # -- campaign-level status -----------------------------------------
    @property
    def quarantined(self) -> List[QuarantineRecord]:
        return [q for report in self.reports for q in report.quarantined]

    @property
    def status(self) -> str:
        if any(r.status == "aborted" for r in self.reports):
            return "aborted"
        if self.quarantined:
            return "complete-with-quarantine"
        return "complete"

    @property
    def exit_code(self) -> int:
        return {"complete": EXIT_COMPLETE,
                "complete-with-quarantine": EXIT_QUARANTINE,
                "aborted": EXIT_ABORTED}[self.status]

    # -- main entry ----------------------------------------------------
    def classify_windows(self, cfg, hw, benchmark: str,
                         scheme: Optional[str],
                         records: Sequence[FaultRecord], *, phase: str,
                         cache=None, ctx=None,
                         checkpoint_stats=None) -> PhaseReport:
        """Classify *records* under supervision; positionally identical
        to ``classifier.run(records)`` minus any quarantined windows."""
        jobs = self.jobs or 1
        records = list(records)
        label = scheme or "baseline"
        phase_ctx = _Phase(cfg=cfg, hw=hw, benchmark=benchmark,
                           scheme=scheme, label=label, phase=phase,
                           records=records,
                           digest=config_digest(cfg, hw),
                           window_estimate=0.0)
        report = PhaseReport(phase=phase, benchmark=benchmark, scheme=label)
        self.reports.append(report)
        if not records:
            return report

        done: Dict[int, Tuple[int, List[WindowResult]]] = {}
        quarantined: List[QuarantineRecord] = []
        self._load_journal_state(phase_ctx, done, quarantined, report)
        report.windows_total = len(records)
        report.windows_done = sum(hi - lo for lo, (hi, _) in done.items())

        gaps = self._gaps(len(records), done, quarantined)
        bounds = self._chunk_gaps(gaps, jobs, records)
        chunk_executor = self._select_executor(jobs)
        self._emit("plan", phase_ctx, chunks=len(bounds),
                   windows=len(records), resumed=report.chunks_resumed,
                   executor=chunk_executor.kind)
        if self.journal is not None:
            self.journal.append({
                "type": "plan", "phase": phase, "benchmark": benchmark,
                "scheme": label, "windows": len(records),
                "bounds": [list(b) for b in bounds],
                "resumed_chunks": report.chunks_resumed,
                "config_digest": phase_ctx.digest, "jobs": jobs})
        # baseline progress sample: a resumed run's monitor restarts ETA
        # estimation from the journal-adopted windows, not from zero
        self._progress(phase_ctx, report)

        if bounds:
            if not chunk_executor.needs_checkpoints:
                # the serial dispatcher threads one live golden core
                # through the chunks — no checkpoint golden pass needed
                checkpoints: List[Any] = [None] * len(bounds)
            else:
                stats = checkpoint_stats
                if stats is None:
                    stats = _parallel.CheckpointStats()
                checkpoints = _parallel.chunk_checkpoints(
                    cfg, hw, benchmark, scheme, records, bounds,
                    cache=cache, events=self.events, ctx=ctx,
                    stats=stats, jobs=jobs)
                stepped = sum(hi - lo for lo, hi in bounds)
                phase_ctx.window_estimate = (stats.golden_pass_seconds
                                             / max(1, stepped))
            chunks = deque(
                _Chunk(lo, hi, self._chunk_key(phase_ctx, lo, hi),
                       checkpoint,
                       max_attempts=self.policy.max_retries + 1)
                for (lo, hi), checkpoint in zip(bounds, checkpoints))
            chunk_executor.run_phase(self, phase_ctx, chunks, done,
                                     quarantined, report, jobs=jobs,
                                     ctx=ctx)

        if report.status == "aborted":
            if self.journal is not None:
                self.journal.append({"type": "drain", "phase": phase})
            if self.events.enabled:
                self.events.absorb_worker_files()
            raise CampaignAborted(phase, self.run_dir)

        report.windows = [window for lo in sorted(done)
                          for window in done[lo][1]]
        report.quarantined = sorted(quarantined, key=lambda q: q.index)
        if report.quarantined:
            report.status = "complete-with-quarantine"
        if self.journal is not None:
            self.journal.append({"type": "phase_done", "phase": phase,
                                 "status": report.status,
                                 "windows": len(report.windows),
                                 "quarantined": len(report.quarantined)})
        self._emit("phase_done", phase_ctx, status=report.status,
                   windows=len(report.windows),
                   quarantined=len(report.quarantined))
        return report

    # -- executor selection --------------------------------------------
    def _select_executor(self, jobs: int) -> ChunkExecutor:
        """The dispatcher for this fan-out: a forced-serial downshift
        always wins (the pool machinery has already proven unusable),
        then an explicit executor (``--fabric``), then serial/pool by
        job count."""
        if self._force_serial:
            return SerialChunkExecutor()
        if self.executor is not None:
            return self.executor
        if jobs == 1:
            return SerialChunkExecutor()
        return LocalPoolExecutor()

    # -- chunk identity and resume -------------------------------------
    def _chunk_key(self, phase_ctx: _Phase, lo: int, hi: int) -> str:
        """Content-addressed chunk identity: configuration, phase, the
        full fault plan and the window range — the same digest family
        the artifact cache uses, so a journal line proves exactly which
        computation it stands for."""
        return self._keyer.key(
            "chunk", cfg=phase_ctx.cfg, hw=phase_ctx.hw,
            benchmark=phase_ctx.benchmark, scheme=phase_ctx.label,
            phase=phase_ctx.phase, lo=lo, hi=hi,
            records=phase_ctx.records)

    def _load_journal_state(self, phase_ctx: _Phase,
                            done: Dict[int, Tuple[int, List[WindowResult]]],
                            quarantined: List[QuarantineRecord],
                            report: PhaseReport) -> None:
        """Adopt completed chunks and quarantines from a prior run's
        journal. A journaled chunk counts only when its recorded key
        matches the key recomputed from the live configuration (same
        config, same fault plan, same range) *and* its pickled results
        load — anything else is re-run."""
        if self.chunk_store is None:
            return
        for entry in self._journal_chunks:
            if entry.get("phase") != phase_ctx.phase:
                continue
            lo, hi = int(entry.get("lo", -1)), int(entry.get("hi", -1))
            if not (0 <= lo < hi <= len(phase_ctx.records)):
                continue
            if entry.get("key") != self._chunk_key(phase_ctx, lo, hi):
                continue
            if lo in done:
                continue
            windows = self.chunk_store.get("chunk", entry["key"])
            if windows is None:
                continue
            done[lo] = (hi, windows)
            report.chunks_resumed += 1
        for entry in self._journal_quarantine:
            if (entry.get("phase") != phase_ctx.phase
                    or entry.get("benchmark") != phase_ctx.benchmark
                    or entry.get("scheme") != phase_ctx.label
                    or entry.get("config_digest") != phase_ctx.digest):
                continue
            index = int(entry.get("index", -1))
            if not 0 <= index < len(phase_ctx.records):
                continue
            if any(q.index == index for q in quarantined):
                continue
            quarantined.append(QuarantineRecord(
                phase=phase_ctx.phase, benchmark=phase_ctx.benchmark,
                scheme=phase_ctx.label, index=index,
                fault_index=int(entry.get("fault_index", -1)),
                site=str(entry.get("site", "?")),
                bit=int(entry.get("bit", -1)),
                inject_at_commit=int(entry.get("inject_at_commit", -1)),
                attempts=int(entry.get("attempts", 0)),
                reason=str(entry.get("reason", "?")),
                error=str(entry.get("error", "")),
                config_digest=phase_ctx.digest))

    @staticmethod
    def _gaps(count: int, done: Dict[int, Tuple[int, List[WindowResult]]],
              quarantined: List[QuarantineRecord]) -> List[Tuple[int, int]]:
        """Maximal uncovered ``[lo, hi)`` runs of the window range."""
        covered = sorted([(lo, hi) for lo, (hi, _) in done.items()]
                         + [(q.index, q.index + 1) for q in quarantined])
        gaps = []
        cursor = 0
        for lo, hi in covered:
            if lo > cursor:
                gaps.append((cursor, lo))
            cursor = max(cursor, hi)
        if cursor < count:
            gaps.append((cursor, count))
        return gaps

    def _chunk_gaps(self, gaps: List[Tuple[int, int]], jobs: int,
                    records: Sequence[FaultRecord]) -> List[Tuple[int, int]]:
        """Split uncovered runs into chunks of ~``chunk_windows`` each
        (at least *jobs* chunks overall, so the pool stays busy). Cuts
        are window-aligned per gap: faults sharing an injection commit
        stay in one chunk (gap edges themselves are fixed — they border
        windows already done or quarantined)."""
        total = sum(hi - lo for lo, hi in gaps)
        if total <= 0:
            return []
        per_chunk = max(1, self.policy.chunk_windows)
        bounds: List[Tuple[int, int]] = []
        for lo, hi in gaps:
            span = hi - lo
            want = math.ceil(span / per_chunk)
            if len(gaps) == 1:
                want = max(want, min(jobs, span))
            bounds.extend((lo + a, lo + b)
                          for a, b in _parallel.chunk_bounds(span, want))
        return _parallel.align_chunk_bounds(bounds, records)

    # -- dispatch: serial ----------------------------------------------
    def _run_serial(self, phase_ctx: _Phase, chunks: "deque[_Chunk]",
                    done, quarantined, report: PhaseReport,
                    ctx=None) -> None:
        """In-process execution threading one live golden core through
        the chunks in window order.

        No checkpoint golden pass and no per-chunk prefix replay: a
        healthy supervised serial campaign does exactly the simulation
        work of the plain serial classifier, plus one in-memory
        ``clone()`` per chunk boundary kept as the rewind point for
        retries. Same retry/bisect/quarantine semantics as the pool; no
        watchdog (a single process cannot preempt itself; SIGKILL-grade
        failures are covered by the journal + resume). A chunk in
        retry backoff is *skipped*, not slept on: later ready chunks
        keep dispatching (threading the live golden forward) and the
        backing-off chunk restarts from its stashed boundary clone
        (``_Chunk.rewind``) once its ``eligible_at`` deadline passes.
        """
        queue = deque(sorted(chunks, key=lambda c: c.lo))
        if not queue:
            return
        if ctx is None:
            ctx = _parallel._worker_context(phase_ctx.cfg, phase_ctx.hw)
        campaign = ctx.build_campaign(phase_ctx.benchmark)
        if phase_ctx.scheme is None:
            factory = campaign.baseline_factory
        else:
            factory = lambda: ctx.make_core(phase_ctx.benchmark,
                                            phase_ctx.scheme)
        records = phase_ctx.records
        golden = None        # live golden core, advanced to `position`
        position = 0
        resume_commit = 0

        def golden_for(chunk: _Chunk):
            """The golden core advanced to *chunk*'s start boundary."""
            nonlocal golden, position, resume_commit
            if chunk.rewind is not None and (golden is None
                                             or position != chunk.lo):
                # revisit of a skipped chunk: the live golden moved past
                # this boundary while the chunk backed off — restart
                # from the clone stashed when it failed
                golden, resume_commit = chunk.rewind
                position = chunk.lo
                return golden
            if golden is not None and position > chunk.lo:
                # min-lo dispatch makes this unreachable for chunks
                # without a rewind stash; cold-rebuild if it ever trips
                golden = None
            if golden is None:
                checkpoint = chunk.checkpoint   # downshifted from a pool
                if (checkpoint is not None
                        and checkpoint.window_index <= chunk.lo):
                    golden = checkpoint.restore()
                    position = checkpoint.window_index
                    resume_commit = checkpoint.resume_at_commit
                else:
                    golden = factory()
            if position < chunk.lo:     # adopted/quarantined gap: golden-
                campaign.classifier(factory).advance_golden(   # only step
                    golden, records[position:chunk.lo])
                position = chunk.lo
                resume_commit = records[chunk.lo - 1].inject_at_commit
            return golden

        while queue:
            if self.drain:
                report.status = "aborted"
                return
            now = time.monotonic()
            # skip-and-revisit: never sleep on a backing-off chunk while
            # other chunks are ready — pick the lowest eligible window
            # range (keeps the golden threading forward when possible)
            chunk = min((c for c in queue if c.eligible_at <= now),
                        key=lambda c: c.lo, default=None)
            if chunk is None:
                wake = min(c.eligible_at for c in queue)
                time.sleep(min(0.25, max(0.0, wake - now)))
                continue
            queue.remove(chunk)
            chunk.attempts += 1
            core = golden_for(chunk)
            boundary = core.clone()
            boundary_resume = resume_commit
            try:
                windows = campaign.classifier(factory).run(
                    records[chunk.lo:chunk.hi], golden=core,
                    resume_at_commit=resume_commit)
            except Exception:
                golden = boundary       # rewind to the chunk boundary
                resume_commit = boundary_resume
                # the stash must not alias the live golden: chunks that
                # run while this one backs off advance (mutate) `golden`
                chunk.rewind = (boundary.clone(), boundary_resume)
                self._note_failure(phase_ctx, chunk, report, "exception",
                                   traceback.format_exc(limit=8))
                retry: "deque[_Chunk]" = deque()
                self._requeue_or_split(phase_ctx, chunk, retry,
                                       quarantined, report)
                queue.extend(retry)
                continue
            position = chunk.hi
            resume_commit = records[chunk.hi - 1].inject_at_commit
            self._complete(phase_ctx, chunk, windows, done, report)
            self._maybe_heartbeat(phase_ctx, report, running=0,
                                  pending=len(queue),
                                  workers=[os.getpid()])

    # -- dispatch: pool ------------------------------------------------
    def _run_pool(self, phase_ctx: _Phase, chunks: "deque[_Chunk]",
                  done, quarantined, report: PhaseReport,
                  jobs: int, ctx=None) -> None:
        """Pool execution with crash attribution.

        A worker SIGKILL breaks the whole ``ProcessPoolExecutor``: every
        in-flight future fails with ``BrokenProcessPool`` regardless of
        which chunk's worker actually died. Charging them all would let
        one poison window quarantine its innocent neighbours, so blame
        is resolved by *probing*: when more than one chunk was in flight
        at break time, nobody is charged and all of them move to a
        suspect queue that re-runs them one at a time — a crash with a
        single chunk in flight is unambiguous, and only then does the
        attempt count toward bisection/quarantine. Jobs are downshifted
        only when the pool itself cannot be (re)built, never because a
        chunk crashed it.
        """
        pending = deque(sorted(chunks, key=lambda c: c.lo))
        probe: "deque[_Chunk]" = deque()    # suspects, run one at a time
        running: Dict[Any, Tuple[_Chunk, float]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        build_failures = 0
        drain_deadline: Optional[float] = None
        spool = (self.events.worker_spool() if self.events.enabled
                 else None)
        if spool is not None:
            os.environ[WORKER_DIR_ENV] = spool
        try:
            while pending or probe or running:
                now = time.monotonic()
                if self.drain:
                    if drain_deadline is None:
                        drain_deadline = now + self.policy.drain_grace
                        self._emit("drain", phase_ctx,
                                   pending=len(pending) + len(probe),
                                   running=len(running))
                    if not running or now > drain_deadline:
                        report.status = "aborted"
                        break
                # (re)build the pool when chunks are waiting
                if pool is None and (pending or probe) and not self.drain:
                    pool = self._build_pool(phase_ctx, jobs, report)
                    if pool is None:
                        build_failures += 1
                        if build_failures >= self.policy.pool_break_limit:
                            build_failures = 0
                            jobs = self._downshift(phase_ctx, jobs, report,
                                                   "pool_unavailable")
                        if self._force_serial:
                            probe.extend(pending)
                            self._run_serial(phase_ctx, probe, done,
                                             quarantined, report, ctx=ctx)
                            return
                        time.sleep(0.05)
                        continue
                # submit: suspects strictly one at a time (attribution),
                # otherwise eligible chunks up to the worker count
                submit_from = probe if probe else pending
                limit = 1 if probe else jobs
                while (pool is not None and submit_from and not self.drain
                       and len(running) < limit and not (probe and running)):
                    chunk = next((c for c in submit_from
                                  if c.eligible_at <= now), None)
                    if chunk is None:
                        break
                    submit_from.remove(chunk)
                    chunk.attempts += 1
                    try:
                        future = pool.submit(supervised_chunk_task,
                                             phase_ctx.task_args(chunk))
                    except (OSError, RuntimeError) as exc:
                        # pool died between builds: put the chunk back
                        # (uncharged) and force a rebuild
                        chunk.attempts -= 1
                        submit_from.appendleft(chunk)
                        self._teardown_pool(pool)
                        pool = None
                        build_failures += 1
                        report.pool_rebuilds += 1
                        self.metrics.counter(
                            "supervisor_pool_rebuilds_total").inc()
                        self._emit("pool_rebuild", phase_ctx,
                                   error=repr(exc))
                        if build_failures >= self.policy.pool_break_limit:
                            build_failures = 0
                            jobs = self._downshift(phase_ctx, jobs, report,
                                                   "pool_unavailable")
                            if self._force_serial:
                                probe.extend(pending)
                                self._run_serial(phase_ctx, probe, done,
                                                 quarantined, report,
                                                 ctx=ctx)
                                return
                        break
                    deadline = self._deadline(phase_ctx, chunk)
                    if deadline > 0:
                        self.metrics.counter(
                            "supervisor_watchdog_armed_total").inc()
                    running[future] = (chunk, deadline)
                if not running:
                    waiting = list(probe) + list(pending)
                    if waiting:
                        wake = min(c.eligible_at for c in waiting)
                        time.sleep(min(0.25, max(0.0,
                                                 wake - time.monotonic())))
                        continue
                    break
                self._maybe_heartbeat(
                    phase_ctx, report, running=len(running),
                    pending=len(pending) + len(probe),
                    workers=[proc.pid for proc in
                             (getattr(pool, "_processes", None)
                              or {}).values()] if pool is not None else ())
                completed, _ = wait(list(running), timeout=0.25,
                                    return_when=FIRST_COMPLETED)
                crashed: List[_Chunk] = []
                for future in completed:
                    chunk, _deadline = running.pop(future)
                    error = future.exception()
                    if error is None:
                        build_failures = 0
                        self._complete(phase_ctx, chunk, future.result(),
                                       done, report)
                    elif isinstance(error, BrokenProcessPool):
                        crashed.append(chunk)
                    else:
                        self._note_failure(phase_ctx, chunk, report,
                                           "exception",
                                           self._format_error(error))
                        self._requeue_or_split(
                            phase_ctx, chunk,
                            probe if chunk.suspect else pending,
                            quarantined, report)
                now = time.monotonic()
                timed_out = [future for future, (c, deadline)
                             in running.items()
                             if deadline > 0 and now > deadline]
                if crashed or timed_out:
                    for future in timed_out:
                        chunk, _deadline = running.pop(future)
                        report.timeouts += 1
                        self.metrics.counter(
                            "supervisor_watchdog_fired_total").inc()
                        self._note_failure(phase_ctx, chunk, report,
                                           "timeout",
                                           f"exceeded chunk deadline "
                                           f"after {chunk.attempts} "
                                           f"attempt(s)")
                        self._emit("timeout", phase_ctx, lo=chunk.lo,
                                   hi=chunk.hi, attempt=chunk.attempts)
                        self._requeue_or_split(
                            phase_ctx, chunk,
                            probe if chunk.suspect else pending,
                            quarantined, report)
                    leftovers = [chunk for chunk, _deadline
                                 in running.values()]
                    running.clear()
                    if crashed:
                        # futures still unresolved at break time belong
                        # to the same suspect group as the ones already
                        # reporting BrokenProcessPool
                        group = crashed + leftovers
                        if len(group) == 1:
                            # a lone in-flight chunk crashed the pool:
                            # unambiguous blame, the attempt counts
                            chunk = group[0]
                            chunk.suspect = True
                            self._note_failure(phase_ctx, chunk, report,
                                               "crash",
                                               "worker died "
                                               "(BrokenProcessPool)")
                            self._requeue_or_split(phase_ctx, chunk,
                                                   probe, quarantined,
                                                   report)
                        else:
                            # ambiguous: charge nobody, probe everybody
                            for chunk in group:
                                chunk.attempts -= 1
                                chunk.suspect = True
                                probe.append(chunk)
                    else:
                        # timeout-only teardown: bystanders ride again,
                        # uncharged
                        for chunk in leftovers:
                            chunk.attempts -= 1
                            (probe if chunk.suspect
                             else pending).appendleft(chunk)
                    self._teardown_pool(pool)
                    pool = None
                    report.pool_rebuilds += 1
                    self.metrics.counter(
                        "supervisor_pool_rebuilds_total").inc()
                    self._emit("pool_rebuild", phase_ctx,
                               reason="crash" if crashed else "timeout")
        finally:
            if pool is not None:
                self._teardown_pool(pool)
            if spool is not None:
                os.environ.pop(WORKER_DIR_ENV, None)
                self.events.absorb_worker_files()

    # -- pool plumbing -------------------------------------------------
    def _build_pool(self, phase_ctx: _Phase, workers: int,
                    report: PhaseReport) -> Optional[ProcessPoolExecutor]:
        try:
            return ProcessPoolExecutor(max_workers=workers,
                                       mp_context=_parallel._mp_context())
        except (OSError, PermissionError, ValueError):
            return None

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor, kill: bool = True) -> None:
        """Tear a pool down without waiting on stuck workers."""
        if kill:
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except (OSError, AttributeError):
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:           # Python < 3.9
            pool.shutdown(wait=False)

    def _downshift(self, phase_ctx: _Phase, current_jobs: int,
                   report: PhaseReport, reason: str) -> int:
        """Halve the worker count (degrade to in-process at 1) instead
        of aborting the campaign."""
        report.downshifts += 1
        self.metrics.counter("supervisor_downshifts_total").inc()
        if current_jobs <= 1:
            self._force_serial = True
            self.events.emit("degradation", reason=reason,
                             jobs_from=current_jobs, jobs_to=0,
                             detail="falling back to in-process execution")
            return current_jobs
        downshifted = max(1, current_jobs // 2)
        self.events.emit("degradation", reason=reason,
                         jobs_from=current_jobs, jobs_to=downshifted)
        return downshifted

    # -- deadlines and backoff -----------------------------------------
    def _deadline(self, phase_ctx: _Phase, chunk: _Chunk) -> float:
        """Absolute (monotonic) deadline for this attempt; 0 = none.

        Soft deadline from the golden-pass throughput estimate, hard
        cap from the policy; retries double the allowance so a slow but
        healthy chunk is never quarantined by an optimistic estimate.
        """
        policy = self.policy
        soft = hard = None
        if policy.soft_timeout_factor > 0:
            soft = max(policy.min_soft_timeout,
                       policy.soft_timeout_factor
                       * phase_ctx.window_estimate * chunk.windows)
        if policy.chunk_timeout is not None and policy.chunk_timeout > 0:
            hard = policy.chunk_timeout
        if soft is None and hard is None:
            return 0.0
        allowed = min(v for v in (soft, hard) if v is not None)
        allowed *= 2.0 ** (chunk.attempts - 1)
        if hard is not None:
            allowed = min(allowed, hard * 2.0 ** (chunk.attempts - 1))
        return time.monotonic() + allowed

    def _backoff(self, chunk: _Chunk) -> float:
        policy = self.policy
        delay = min(policy.backoff_max,
                    policy.backoff_base * 2.0 ** (chunk.attempts - 1))
        self._jitter_salt += 1
        jitter = _chaos_fraction("backoff", chunk.lo, chunk.hi,
                                 chunk.attempts, self._jitter_salt)
        return delay * (1.0 + policy.backoff_jitter * jitter)

    # -- outcome handling ----------------------------------------------
    @staticmethod
    def _format_error(error: BaseException) -> str:
        return "".join(traceback.format_exception_only(type(error),
                                                       error)).strip()

    def _emit(self, action: str, phase_ctx: _Phase, **fields: Any) -> None:
        self.events.emit("supervisor", action=action,
                         phase=phase_ctx.phase,
                         benchmark=phase_ctx.benchmark,
                         scheme=phase_ctx.label, **fields)

    def _progress(self, phase_ctx: _Phase, report: PhaseReport) -> None:
        """One ``campaign_progress`` counter sample (live ETA feed)."""
        self.events.counter("campaign_progress", report.windows_done,
                            phase=phase_ctx.phase,
                            benchmark=phase_ctx.benchmark,
                            scheme=phase_ctx.label,
                            total=report.windows_total)

    def _maybe_heartbeat(self, phase_ctx: _Phase, report: PhaseReport,
                         running: int, pending: int,
                         workers: Sequence[int] = ()) -> None:
        """Rate-limited liveness beacon while a fan-out is in flight."""
        interval = self.policy.heartbeat_interval
        if interval <= 0 or not self.events.enabled:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < interval:
            return
        self._last_heartbeat = now
        self.events.emit("heartbeat", phase=phase_ctx.phase,
                         benchmark=phase_ctx.benchmark,
                         scheme=phase_ctx.label, running=running,
                         pending=pending, workers=list(workers),
                         windows_done=report.windows_done,
                         windows_total=report.windows_total)
        self.metrics.gauge("supervisor_workers_alive").set(
            len(workers) or running)

    def _complete(self, phase_ctx: _Phase, chunk: _Chunk,
                  windows: List[WindowResult], done,
                  report: PhaseReport) -> None:
        done[chunk.lo] = (chunk.hi, windows)
        report.chunks_run += 1
        report.windows_done += chunk.windows
        self._emit("chunk_done", phase_ctx, lo=chunk.lo, hi=chunk.hi,
                   attempt=chunk.attempts, key=chunk.key)
        if self.journal is not None:
            self.chunk_store.put("chunk", chunk.key, windows)
            self.journal.append({
                "type": "chunk_done", "phase": phase_ctx.phase,
                "key": chunk.key, "lo": chunk.lo, "hi": chunk.hi,
                "windows": len(windows), "attempt": chunk.attempts})
        self._progress(phase_ctx, report)
        if self.metrics.enabled:
            self.metrics.counter("supervisor_chunks_done_total").inc()
            self.metrics.counter("supervisor_windows_done_total").inc(
                chunk.windows)

    def _note_failure(self, phase_ctx: _Phase, chunk: _Chunk,
                      report: PhaseReport, reason: str,
                      error: str) -> None:
        chunk.last_reason = reason
        chunk.last_error = error
        self.metrics.counter("supervisor_failures_total").inc()
        self._emit("retry", phase_ctx, lo=chunk.lo, hi=chunk.hi,
                   attempt=chunk.attempts, reason=reason,
                   error=error[-400:])

    def _requeue_or_split(self, phase_ctx: _Phase, chunk: _Chunk,
                          pending, quarantined: List[QuarantineRecord],
                          report: PhaseReport) -> None:
        """Retry with backoff; once the attempt budget is spent, bisect
        toward the offending window(s) and quarantine at size one."""
        if chunk.attempts < chunk.max_attempts:
            report.retries += 1
            self.metrics.counter("supervisor_retries_total").inc()
            chunk.eligible_at = time.monotonic() + self._backoff(chunk)
            pending.append(chunk)
            return
        if chunk.windows <= 1:
            self._quarantine(phase_ctx, chunk, quarantined, report)
            return
        mid = (chunk.lo + chunk.hi) // 2
        self._emit("bisect", phase_ctx, lo=chunk.lo, hi=chunk.hi)
        budget = self.policy.bisect_retries + 1
        # the lower half shares the parent's start boundary, so its
        # serial rewind stash still applies
        pending.append(_Chunk(chunk.lo, mid,
                              self._chunk_key(phase_ctx, chunk.lo, mid),
                              chunk.checkpoint, max_attempts=budget,
                              suspect=chunk.suspect, rewind=chunk.rewind))
        # the upper half loses its boundary checkpoint and falls back to
        # the golden prefix-replay path inside window_chunk_task
        pending.append(_Chunk(mid, chunk.hi,
                              self._chunk_key(phase_ctx, mid, chunk.hi),
                              None, max_attempts=budget,
                              suspect=chunk.suspect))

    def _quarantine(self, phase_ctx: _Phase, chunk: _Chunk,
                    quarantined: List[QuarantineRecord],
                    report: PhaseReport) -> None:
        record = phase_ctx.records[chunk.lo]
        quarantine = QuarantineRecord(
            phase=phase_ctx.phase, benchmark=phase_ctx.benchmark,
            scheme=phase_ctx.label, index=chunk.lo,
            fault_index=record.index, site=record.site.value,
            bit=record.bit, inject_at_commit=record.inject_at_commit,
            attempts=chunk.attempts, reason=chunk.last_reason or "?",
            error=chunk.last_error, config_digest=phase_ctx.digest)
        quarantined.append(quarantine)
        self.metrics.counter("supervisor_quarantined_total").inc()
        self._emit("quarantine", phase_ctx, lo=chunk.lo, hi=chunk.hi,
                   attempt=chunk.attempts, reason=quarantine.reason)
        if self.run_dir is not None:
            path = self.run_dir / "poisoned.jsonl"
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(quarantine.as_json(),
                                        sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        if self.journal is not None:
            self.journal.append(quarantine.as_json())


# ----------------------------------------------------------------------
# run-dir inspection (``repro report --run-dir`` / ``repro resume``)
# ----------------------------------------------------------------------
def read_poisoned(run_dir: str | os.PathLike) -> List[Dict[str, Any]]:
    """Parsed ``poisoned.jsonl`` records (empty when none quarantined)."""
    path = pathlib.Path(run_dir) / "poisoned.jsonl"
    records: List[Dict[str, Any]] = []
    if not path.exists():
        return records
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def summarize_run_dir(run_dir: str | os.PathLike) -> Dict[str, Any]:
    """Journal roll-up for one campaign run directory."""
    journal = CampaignJournal.read(run_dir)
    by_type: Dict[str, int] = {}
    phases: Dict[str, Dict[str, Any]] = {}
    for entry in journal:
        entry_type = entry.get("type", "?")
        by_type[entry_type] = by_type.get(entry_type, 0) + 1
        phase = entry.get("phase")
        if phase is None:
            continue
        slot = phases.setdefault(phase, {"chunks_done": 0, "windows": 0,
                                         "status": "incomplete"})
        if entry_type == "chunk_done":
            slot["chunks_done"] += 1
            slot["windows"] += int(entry.get("windows", 0))
        elif entry_type == "phase_done":
            slot["status"] = entry.get("status", "complete")
    poisoned = read_poisoned(run_dir)
    return {"run_dir": str(run_dir), "journal_records": len(journal),
            "by_type": dict(sorted(by_type.items())), "phases": phases,
            "poisoned": len(poisoned),
            "poisoned_windows": [
                {k: p.get(k) for k in ("phase", "index", "site", "bit",
                                       "reason")}
                for p in poisoned]}


__all__ = [
    "CHAOS_CRASH_RATE_ENV",
    "CHAOS_HANG_ENV",
    "CHAOS_POISON_ENV",
    "CampaignAborted",
    "CampaignJournal",
    "EXIT_ABORTED",
    "EXIT_COMPLETE",
    "EXIT_QUARANTINE",
    "PhaseReport",
    "QuarantineRecord",
    "Supervisor",
    "SupervisorPolicy",
    "chaos_probe",
    "read_poisoned",
    "summarize_run_dir",
    "supervised_chunk_task",
]
