"""Experiment configuration, scheme registry and cached runners.

Every figure regeneration flows through an :class:`ExperimentContext`,
which caches the expensive artefacts — generated programs, fault-free
timing/energy runs, and fault-injection campaigns — so the benches for
Figures 8, 9, 10, 11 and 12 can share work.

The default scale is laptop-sized (thousands of instructions, tens of
faults per benchmark); the paper's scale (50M-instruction SimPoints,
15,000 faults) is reachable by raising the config numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..config import FaultHoundConfig, HardwareConfig, PBFSConfig
from ..core import FaultHoundUnit, NullScreeningUnit, PBFSUnit
from ..core.screening import ScreeningUnit
from ..energy import EnergyBreakdown, EnergyModel
from ..faults import Campaign, CampaignResult
from ..faults.campaign import ThroughputRecord
from ..analysis.metrics import fp_rate
from ..obs.audit import audit_records
from ..obs.events import NULL_LOG
from ..obs.metrics import NULL_METRICS, SECONDS_BUCKETS
from ..obs.manifest import build_manifest, manifest_path_for, write_manifest
from ..pipeline import PipelineCore
from ..redundancy import dynamic_length, srt_iso_core
from ..workloads import PROFILES, build_smt_programs
from .cache import ArtifactCache
from . import parallel as _parallel
from .parallel import ContextMetrics, ParallelExecutor

# ----------------------------------------------------------------------
# scheme registry
# ----------------------------------------------------------------------
_BE = dict(squash_detection=False)

SCHEMES: Dict[str, Callable[[], ScreeningUnit]] = {
    "baseline": NullScreeningUnit,
    "pbfs": lambda: PBFSUnit(PBFSConfig()),
    "pbfs-biased": lambda: PBFSUnit(PBFSConfig(biased=True)),
    # Section 2.2's strawman: swapping sticky counters for conventional
    # two-bit counters raises coverage but explodes the FP rate.
    "pbfs-standard": lambda: PBFSUnit(PBFSConfig(counter="standard",
                                                 changing_states=3)),
    "faulthound": lambda: FaultHoundUnit(FaultHoundConfig()),
    "fh-backend": lambda: FaultHoundUnit(FaultHoundConfig(**_BE)),
    # Figure 12 ablations (back-end only, like the paper)
    "fh-be-no2level": lambda: FaultHoundUnit(
        FaultHoundConfig(second_level=False, **_BE)),
    "fh-be-nocluster-no2level": lambda: FaultHoundUnit(
        FaultHoundConfig(clustering=False, second_level=False, **_BE)),
    "fh-be-full-rollback": lambda: FaultHoundUnit(
        FaultHoundConfig(full_rollback_on_trigger=True, **_BE)),
    "fh-be-nolsq": lambda: FaultHoundUnit(
        FaultHoundConfig(lsq_check=False, **_BE)),
}


def scheme_unit(name: str) -> ScreeningUnit:
    """Instantiate a fresh screening unit by registry name."""
    try:
        return SCHEMES[name]()
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; "
                       f"known: {sorted(SCHEMES)}") from None


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and scope knobs shared by every experiment."""

    benchmarks: Tuple[str, ...] = tuple(PROFILES)
    #: Committed instructions per thread in fault-free runs.
    dynamic_target: int = 20_000
    smt_copies: int = 2
    #: Faults per benchmark in the characterisation campaign (paper:
    #: 15,000; the laptop default trades sample size for wall-clock).
    num_faults: int = 120
    warmup_commits: int = 400
    window_commits: int = 150
    max_window_cycles: int = 40_000
    seed: int = 7
    #: Lane-batch width for the batched tandem engine
    #: (repro.faults.batched); 1 = the scalar clone-per-fault path.
    #: Campaign results are bit-for-bit identical for any value.
    batch_lanes: int = 1
    #: "fixed" uses ``srt_fixed_coverage`` for SRT-iso's thinning;
    #: "measured" uses each benchmark's measured FaultHound coverage
    #: (requires campaigns, so it is slower).
    srt_coverage_mode: str = "fixed"
    srt_fixed_coverage: float = 0.75

    def quick(self) -> "ExperimentConfig":
        """A smaller copy for smoke tests."""
        return replace(self, dynamic_target=3_000, num_faults=12,
                       warmup_commits=200, window_commits=100)


# ----------------------------------------------------------------------
# run records
# ----------------------------------------------------------------------
@dataclass
class FaultFreeRun:
    """Derived results of one fault-free (timing/energy) run."""

    benchmark: str
    scheme: str
    cycles: int
    committed: int
    fp_rate: float
    energy: EnergyBreakdown
    replay_events: int
    rollback_events: int
    singleton_reexecs: int
    branch_mispredicts: int
    ipc: float


class ExperimentContext:
    """Caches programs, runs and campaigns across figure regenerations.

    ``jobs`` sizes the worker pool for campaign/figure fan-out (default
    ``os.cpu_count()``; ``jobs=1`` is the reference serial path — the
    parallel paths produce bit-for-bit identical results). ``cache`` is
    an optional persistent :class:`~repro.harness.cache.ArtifactCache`;
    when given, fault-free runs, campaigns and coverage phases are
    reloaded from disk instead of recomputed (the key includes a
    code-version salt, so stale entries are impossible).
    """

    def __init__(self, cfg: ExperimentConfig | None = None,
                 hw: HardwareConfig | None = None,
                 jobs: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None,
                 events=None, supervisor=None, metrics=None):
        self.cfg = cfg or ExperimentConfig()
        self.hw = hw or HardwareConfig()
        self.jobs = max(1, jobs if jobs is not None
                        else _parallel.default_jobs())
        self.cache = cache
        #: Structured event log (``repro.obs``); defaults to the no-op
        #: sink, so phases span/emit unconditionally at zero cost.
        self.events = events if events is not None else NULL_LOG
        #: Live-telemetry registry (``repro.obs.metrics``); defaults to
        #: the no-op NULL registry, same pattern as ``events``. Named
        #: ``metrics_registry`` because ``metrics`` below is the legacy
        #: :class:`ContextMetrics` throughput record.
        self.metrics_registry = metrics if metrics is not None \
            else NULL_METRICS
        #: Optional :class:`~repro.harness.supervisor.Supervisor`; when
        #: given, campaign window fan-outs run under its retry/timeout/
        #: quarantine/journal protection instead of the bare dispatcher.
        self.supervisor = supervisor
        if supervisor is not None:
            supervisor.bind(jobs=self.jobs, events=self.events,
                            metrics=self.metrics_registry)
        if cache is not None and cache.events is NULL_LOG:
            cache.events = self.events
        if cache is not None and cache.metrics is NULL_METRICS:
            cache.metrics = self.metrics_registry
        self.metrics = ContextMetrics()
        self._executor = ParallelExecutor(self.jobs, events=self.events,
                                          metrics=self.metrics_registry)
        self._programs: Dict[str, List] = {}
        self._lengths: Dict[str, List[int]] = {}
        self._fault_free: Dict[Tuple[str, str], FaultFreeRun] = {}
        self._srt: Dict[Tuple[str, float], FaultFreeRun] = {}
        self._campaigns: Dict[str, Tuple[Campaign, CampaignResult]] = {}
        self._coverage: Dict[Tuple[str, str], CampaignResult] = {}
        self._energy_model = EnergyModel()

    # -- persistent cache plumbing ---------------------------------------
    def _cache_get(self, kind: str, **parts: Any):
        if self.cache is None:
            return None
        key = self.cache.key(kind, cfg=self.cfg, hw=self.hw, **parts)
        artefact = self.cache.get(kind, key)
        if artefact is None:
            self.metrics.cache_misses += 1
        else:
            self.metrics.cache_hits += 1
        self.events.cache_event(kind, key, hit=artefact is not None)
        return artefact

    def _cache_put(self, kind: str, artefact: Any, **parts: Any) -> None:
        if self.cache is None:
            return
        key = self.cache.key(kind, cfg=self.cfg, hw=self.hw, **parts)
        if self.cache.put(kind, key, artefact):
            # provenance next to the artefact: which exact configuration
            # and code version produced this cache entry
            manifest = build_manifest(kind, self.cfg, self.hw, parts=parts,
                                      key=key, jobs=self.jobs)
            write_manifest(
                manifest_path_for(self.cache.artifact_path(kind, key)),
                manifest)

    # -- workloads ------------------------------------------------------
    def programs(self, benchmark: str) -> List:
        if benchmark not in self._programs:
            profile = PROFILES[benchmark]
            self._programs[benchmark] = build_smt_programs(
                profile, self.cfg.dynamic_target, copies=self.cfg.smt_copies)
        return self._programs[benchmark]

    def lengths(self, benchmark: str) -> List[int]:
        if benchmark not in self._lengths:
            self._lengths[benchmark] = [
                dynamic_length(p) for p in self.programs(benchmark)]
        return self._lengths[benchmark]

    def make_core(self, benchmark: str, scheme: str) -> PipelineCore:
        return PipelineCore(self.programs(benchmark), hw=self.hw,
                            screening=scheme_unit(scheme))

    # -- fault-free timing/energy runs -----------------------------------
    def fault_free(self, benchmark: str, scheme: str) -> FaultFreeRun:
        key = (benchmark, scheme)
        if key not in self._fault_free:
            with self.events.span("phase:fault_free", benchmark=benchmark,
                                  scheme=scheme):
                run = self._cache_get("fault_free", benchmark=benchmark,
                                      scheme=scheme)
                if run is None:
                    started = time.perf_counter()
                    run = self._run_fault_free(benchmark, scheme)
                    self.metrics.note_phase("fault_free",
                                            time.perf_counter() - started)
                    self._cache_put("fault_free", run, benchmark=benchmark,
                                    scheme=scheme)
            self._fault_free[key] = run
        return self._fault_free[key]

    def _run_fault_free(self, benchmark: str, scheme: str) -> FaultFreeRun:
        core = self.make_core(benchmark, scheme)
        # Warm caches, predictors and filters, then measure the
        # false-positive rate over the steady-state region only.
        warm_total = self.cfg.warmup_commits * len(core.threads)
        core.run_until_commits(warm_total)
        unit = core.screening
        checks_before = dict(unit.action_counts)
        committed_before = core.stats.committed
        core.run(max_cycles=8_000_000)
        steady_committed = core.stats.committed - committed_before
        from ..core.actions import CheckAction
        steady_actions = sum(
            unit.action_counts[a] - checks_before.get(a, 0)
            for a in (CheckAction.REPLAY, CheckAction.SQUASH,
                      CheckAction.SINGLETON))
        rate = (steady_actions / steady_committed
                if steady_committed else 0.0)
        core.record_metrics(self.metrics_registry)
        return FaultFreeRun(
            benchmark=benchmark, scheme=scheme,
            cycles=core.stats.cycles, committed=core.stats.committed,
            fp_rate=rate, energy=self._energy_model.compute(core),
            replay_events=core.stats.replay_events,
            rollback_events=core.stats.rollback_events,
            singleton_reexecs=core.stats.singleton_reexecs,
            branch_mispredicts=core.stats.branch_mispredicts,
            ipc=core.stats.ipc)

    # -- SRT-iso ----------------------------------------------------------
    @staticmethod
    def _srt_key(benchmark: str, coverage: float) -> Tuple[str, float]:
        """Semantic cache key for one SRT-iso run.

        The benchmark is part of the key *derivation*, not an accident of
        tuple position, and the coverage is kept at full precision: the
        old ``round(coverage, 3)`` could alias two distinct "measured"
        coverages onto one cached run.
        """
        return (benchmark, float(coverage))

    def srt_run(self, benchmark: str,
                coverage: Optional[float] = None) -> FaultFreeRun:
        if coverage is None:
            coverage = self.srt_coverage(benchmark)
        key = self._srt_key(benchmark, coverage)
        if key not in self._srt:
            with self.events.span("phase:srt", benchmark=benchmark,
                                  coverage=coverage):
                run = self._cache_get("srt", benchmark=benchmark,
                                      coverage=coverage)
                if run is None:
                    started = time.perf_counter()
                    run = self._run_srt(benchmark, coverage)
                    self.metrics.note_phase("srt",
                                            time.perf_counter() - started)
                    self._cache_put("srt", run, benchmark=benchmark,
                                    coverage=coverage)
            self._srt[key] = run
        return self._srt[key]

    def _run_srt(self, benchmark: str, coverage: float) -> FaultFreeRun:
        core = srt_iso_core(self.programs(benchmark), hw=self.hw,
                            coverage=coverage,
                            lengths=self.lengths(benchmark))
        core.run(max_cycles=8_000_000)
        core.record_metrics(self.metrics_registry)
        return FaultFreeRun(
            benchmark=benchmark, scheme=f"srt-iso@{round(coverage, 3)}",
            cycles=core.stats.cycles, committed=core.stats.committed,
            fp_rate=0.0, energy=self._energy_model.compute(core),
            replay_events=0, rollback_events=0, singleton_reexecs=0,
            branch_mispredicts=core.stats.branch_mispredicts,
            ipc=core.stats.ipc)

    def srt_coverage(self, benchmark: str) -> float:
        if self.cfg.srt_coverage_mode == "measured":
            return self.coverage(benchmark, "faulthound").coverage
        return self.cfg.srt_fixed_coverage

    # -- campaigns --------------------------------------------------------
    def build_campaign(self, benchmark: str) -> Campaign:
        """A freshly planned (not yet run) campaign for *benchmark* —
        cheap, deterministic in the config seed."""
        cfg = self.cfg
        return Campaign(
            benchmark,
            lambda: self.make_core(benchmark, "baseline"),
            num_phys_regs=self.hw.phys_regs,
            num_threads=self.cfg.smt_copies,
            num_faults=cfg.num_faults, seed=cfg.seed,
            warmup_commits=cfg.warmup_commits,
            window_commits=cfg.window_commits,
            max_window_cycles=cfg.max_window_cycles,
            batch_lanes=cfg.batch_lanes,
            metrics=self.metrics_registry)

    def campaign(self, benchmark: str) -> Tuple[Campaign, CampaignResult]:
        if benchmark not in self._campaigns:
            with self.events.span("phase:characterize",
                                  benchmark=benchmark):
                campaign = self.build_campaign(benchmark)
                started = time.perf_counter()
                characterization = self._cache_get("characterize",
                                                   benchmark=benchmark)
                from_cache = characterization is not None
                cp_stats = _parallel.CheckpointStats()
                sup_report = None
                if not from_cache:
                    if self.supervisor is not None:
                        sup_report = self.supervisor.classify_windows(
                            self.cfg, self.hw, benchmark, None,
                            campaign.records, phase="characterize",
                            cache=self.cache, ctx=self,
                            checkpoint_stats=cp_stats)
                        windows = sup_report.windows
                        characterization = CampaignResult(
                            benchmark, "baseline",
                            [w.record for w in windows])
                        characterization.characterization = windows
                        characterization.quarantined = list(
                            sup_report.quarantined)
                    elif self.jobs > 1 and len(campaign.records) > 1:
                        windows = _parallel.classify_windows_parallel(
                            self.cfg, self.hw, benchmark, None,
                            campaign.records, self._executor,
                            cache=self.cache, ctx=self,
                            checkpoint_stats=cp_stats)
                        characterization = CampaignResult(
                            benchmark, "baseline",
                            [w.record for w in windows])
                        characterization.characterization = windows
                    else:
                        characterization = campaign.characterize()
                    if not characterization.quarantined:
                        # never cache a partial (quarantine-reduced)
                        # phase in the shared artifact store
                        self._cache_put("characterize", characterization,
                                        benchmark=benchmark)
                # keep record identity consistent with the result we serve
                campaign.records = characterization.records
                elapsed = time.perf_counter() - started
                windows = len(characterization.characterization)
                characterization.throughput = ThroughputRecord(
                    phase="characterize", windows=windows,
                    wall_seconds=elapsed, jobs=self.jobs,
                    from_cache=from_cache,
                    checkpoints_captured=cp_stats.captured,
                    checkpoint_hits=cp_stats.hits,
                    golden_pass_seconds=cp_stats.golden_pass_seconds)
                self._note_supervised(characterization.throughput,
                                      sup_report)
                self.metrics.note_phase("characterize", elapsed,
                                        windows=0 if from_cache else windows)
                self.metrics_registry.histogram(
                    "phase_seconds", SECONDS_BUCKETS).observe(elapsed)
                self._emit_audit(characterization, "characterize")
            self._campaigns[benchmark] = (campaign, characterization)
        return self._campaigns[benchmark]

    def coverage(self, benchmark: str, scheme: str) -> CampaignResult:
        key = (benchmark, scheme)
        if key not in self._coverage:
            campaign, characterization = self.campaign(benchmark)
            with self.events.span("phase:coverage", benchmark=benchmark,
                                  scheme=scheme):
                started = time.perf_counter()
                result = self._cache_get("coverage", benchmark=benchmark,
                                         scheme=scheme)
                from_cache = result is not None
                cp_stats = _parallel.CheckpointStats()
                sup_report = None
                if from_cache:
                    # re-link to this context's characterisation windows
                    result.characterization = (
                        characterization.characterization)
                else:
                    sdc_records = Campaign.sdc_records(characterization)
                    if self.supervisor is not None:
                        sup_report = self.supervisor.classify_windows(
                            self.cfg, self.hw, benchmark, scheme,
                            sdc_records, phase="coverage",
                            cache=self.cache, ctx=self,
                            checkpoint_stats=cp_stats)
                        result = campaign.collect_coverage(
                            scheme, characterization, sup_report.windows)
                        result.quarantined = list(sup_report.quarantined)
                    elif self.jobs > 1 and len(sdc_records) > 1:
                        windows = _parallel.classify_windows_parallel(
                            self.cfg, self.hw, benchmark, scheme,
                            sdc_records, self._executor,
                            cache=self.cache, ctx=self,
                            checkpoint_stats=cp_stats)
                        result = campaign.collect_coverage(
                            scheme, characterization, windows)
                    else:
                        result = campaign.run_coverage(
                            scheme,
                            lambda: self.make_core(benchmark, scheme),
                            characterization)
                    if not result.quarantined:
                        self._cache_put("coverage", result,
                                        benchmark=benchmark, scheme=scheme)
                elapsed = time.perf_counter() - started
                windows = len(result.coverage_results)
                result.throughput = ThroughputRecord(
                    phase="coverage", windows=windows, wall_seconds=elapsed,
                    jobs=self.jobs, from_cache=from_cache,
                    checkpoints_captured=cp_stats.captured,
                    checkpoint_hits=cp_stats.hits,
                    golden_pass_seconds=cp_stats.golden_pass_seconds)
                self._note_supervised(result.throughput, sup_report)
                self.metrics.note_phase("coverage", elapsed,
                                        windows=0 if from_cache else windows)
                self.metrics_registry.histogram(
                    "phase_seconds", SECONDS_BUCKETS).observe(elapsed)
                self._emit_audit(result, "coverage")
            self._coverage[key] = result
        return self._coverage[key]

    # -- batch fan-out ----------------------------------------------------
    def prefetch(self, fault_free: Sequence[str] = (),
                 coverage: Sequence[str] = (),
                 campaigns: bool = False, srt: bool = False,
                 benchmarks: Optional[Sequence[str]] = None) -> None:
        """Fan missing artefacts out across the worker pool.

        Figures call this up front with everything they are about to
        read, so independent (benchmark, scheme) runs and campaigns
        compute concurrently; the figure logic then proceeds through the
        warm in-memory caches unchanged. With ``jobs=1`` this is a no-op
        — the pull path computes identical artefacts on demand.
        """
        if self.jobs <= 1:
            return
        benchmarks = tuple(benchmarks or self.cfg.benchmarks)
        cfg, hw = self.cfg, self.hw

        def fan_out(phase: str, task_fn, jobs_args: List[Tuple],
                    store: Callable[[Tuple, Any], None]) -> None:
            if not jobs_args:
                return
            started = time.perf_counter()
            results = self._executor.map(task_fn, jobs_args)
            self.metrics.note_phase(f"prefetch:{phase}",
                                    time.perf_counter() - started)
            for args, result in zip(jobs_args, results):
                store(args, result)

        # fault-free timing/energy runs
        todo = []
        for scheme in fault_free:
            for benchmark in benchmarks:
                if (benchmark, scheme) in self._fault_free:
                    continue
                run = self._cache_get("fault_free", benchmark=benchmark,
                                      scheme=scheme)
                if run is not None:
                    self._fault_free[(benchmark, scheme)] = run
                else:
                    todo.append((cfg, hw, benchmark, scheme))

        def store_fault_free(args: Tuple, run: FaultFreeRun) -> None:
            _, _, benchmark, scheme = args
            self._fault_free[(benchmark, scheme)] = run
            self._cache_put("fault_free", run, benchmark=benchmark,
                            scheme=scheme)

        fan_out("fault_free", _parallel.fault_free_task, todo,
                store_fault_free)

        # characterisation campaigns
        need_campaigns = (campaigns or bool(coverage)
                          or (srt and self.cfg.srt_coverage_mode
                              == "measured"))
        if need_campaigns:
            todo = []
            for benchmark in benchmarks:
                if benchmark in self._campaigns:
                    continue
                cached = self._cache_get("characterize",
                                         benchmark=benchmark)
                if cached is not None:
                    self._adopt_characterization(benchmark, cached,
                                                 from_cache=True)
                else:
                    todo.append((cfg, hw, benchmark))

            def store_campaign(args: Tuple,
                               characterization: CampaignResult) -> None:
                _, _, benchmark = args
                self._cache_put("characterize", characterization,
                                benchmark=benchmark)
                self._adopt_characterization(benchmark, characterization,
                                             from_cache=False)

            fan_out("characterize", _parallel.characterize_task, todo,
                    store_campaign)

        # coverage phases (needs characterisations, computed above)
        todo = []
        for scheme in coverage:
            for benchmark in benchmarks:
                if (benchmark, scheme) in self._coverage:
                    continue
                cached = self._cache_get("coverage", benchmark=benchmark,
                                         scheme=scheme)
                if cached is not None:
                    self._adopt_coverage(benchmark, scheme, cached,
                                         from_cache=True)
                else:
                    _, characterization = self.campaign(benchmark)
                    todo.append((cfg, hw, benchmark, scheme,
                                 characterization))

        def store_coverage(args: Tuple, result: CampaignResult) -> None:
            _, _, benchmark, scheme, _ = args
            self._cache_put("coverage", result, benchmark=benchmark,
                            scheme=scheme)
            self._adopt_coverage(benchmark, scheme, result,
                                 from_cache=False)

        fan_out("coverage", _parallel.coverage_task, todo, store_coverage)

        # SRT-iso runs (coverage values need campaigns in measured mode)
        if srt:
            todo = []
            for benchmark in benchmarks:
                value = self.srt_coverage(benchmark)
                if self._srt_key(benchmark, value) in self._srt:
                    continue
                run = self._cache_get("srt", benchmark=benchmark,
                                      coverage=value)
                if run is not None:
                    self._srt[self._srt_key(benchmark, value)] = run
                else:
                    todo.append((cfg, hw, benchmark, value))

            def store_srt(args: Tuple, run: FaultFreeRun) -> None:
                _, _, benchmark, value = args
                self._srt[self._srt_key(benchmark, value)] = run
                self._cache_put("srt", run, benchmark=benchmark,
                                coverage=value)

            fan_out("srt", _parallel.srt_task, todo, store_srt)

    def _adopt_characterization(self, benchmark: str,
                                characterization: CampaignResult,
                                from_cache: bool) -> None:
        campaign = self.build_campaign(benchmark)
        campaign.records = characterization.records
        characterization.throughput = ThroughputRecord(
            phase="characterize",
            windows=len(characterization.characterization),
            jobs=self.jobs, from_cache=from_cache)
        self._campaigns[benchmark] = (campaign, characterization)
        self._emit_audit(characterization, "characterize")

    def _adopt_coverage(self, benchmark: str, scheme: str,
                        result: CampaignResult, from_cache: bool) -> None:
        _, characterization = self.campaign(benchmark)
        result.characterization = characterization.characterization
        result.throughput = ThroughputRecord(
            phase="coverage", windows=len(result.coverage_results),
            jobs=self.jobs, from_cache=from_cache)
        self._coverage[(benchmark, scheme)] = result
        self._emit_audit(result, "coverage")

    @staticmethod
    def _note_supervised(throughput: ThroughputRecord,
                         report) -> None:
        """Fold a supervisor :class:`PhaseReport`'s counters into the
        phase's throughput record (no-op on unsupervised runs)."""
        if report is None:
            return
        throughput.retries = report.retries
        throughput.timeouts = report.timeouts
        throughput.pool_rebuilds = report.pool_rebuilds
        throughput.quarantined = len(report.quarantined)
        throughput.chunks_resumed = report.chunks_resumed

    # -- audit trail ------------------------------------------------------
    def _emit_audit(self, result: CampaignResult, phase: str) -> None:
        """One ``fault_audit`` event per window, at the moment a campaign
        phase's result is first materialised in this context.

        Memoisation in :meth:`campaign` / :meth:`coverage` (and the
        single-shot adopt paths behind :meth:`prefetch`) guarantees each
        (benchmark, scheme, phase) emits exactly once per context, so the
        audit trail's aggregates are identical across serial, parallel
        and warm-cache runs.
        """
        if not self.events.enabled:
            return
        for record in audit_records(result, phase):
            self.events.emit("fault_audit", **record.as_event())


__all__ = ["ExperimentConfig", "ExperimentContext", "FaultFreeRun",
           "SCHEMES", "scheme_unit"]
