"""Experiment configuration, scheme registry and cached runners.

Every figure regeneration flows through an :class:`ExperimentContext`,
which caches the expensive artefacts — generated programs, fault-free
timing/energy runs, and fault-injection campaigns — so the benches for
Figures 8, 9, 10, 11 and 12 can share work.

The default scale is laptop-sized (thousands of instructions, tens of
faults per benchmark); the paper's scale (50M-instruction SimPoints,
15,000 faults) is reachable by raising the config numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import FaultHoundConfig, HardwareConfig, PBFSConfig
from ..core import FaultHoundUnit, NullScreeningUnit, PBFSUnit
from ..core.screening import ScreeningUnit
from ..energy import EnergyBreakdown, EnergyModel
from ..faults import Campaign, CampaignResult
from ..analysis.metrics import fp_rate
from ..pipeline import PipelineCore
from ..redundancy import dynamic_length, srt_iso_core
from ..workloads import PROFILES, build_smt_programs

# ----------------------------------------------------------------------
# scheme registry
# ----------------------------------------------------------------------
_BE = dict(squash_detection=False)

SCHEMES: Dict[str, Callable[[], ScreeningUnit]] = {
    "baseline": NullScreeningUnit,
    "pbfs": lambda: PBFSUnit(PBFSConfig()),
    "pbfs-biased": lambda: PBFSUnit(PBFSConfig(biased=True)),
    # Section 2.2's strawman: swapping sticky counters for conventional
    # two-bit counters raises coverage but explodes the FP rate.
    "pbfs-standard": lambda: PBFSUnit(PBFSConfig(counter="standard",
                                                 changing_states=3)),
    "faulthound": lambda: FaultHoundUnit(FaultHoundConfig()),
    "fh-backend": lambda: FaultHoundUnit(FaultHoundConfig(**_BE)),
    # Figure 12 ablations (back-end only, like the paper)
    "fh-be-no2level": lambda: FaultHoundUnit(
        FaultHoundConfig(second_level=False, **_BE)),
    "fh-be-nocluster-no2level": lambda: FaultHoundUnit(
        FaultHoundConfig(clustering=False, second_level=False, **_BE)),
    "fh-be-full-rollback": lambda: FaultHoundUnit(
        FaultHoundConfig(full_rollback_on_trigger=True, **_BE)),
    "fh-be-nolsq": lambda: FaultHoundUnit(
        FaultHoundConfig(lsq_check=False, **_BE)),
}


def scheme_unit(name: str) -> ScreeningUnit:
    """Instantiate a fresh screening unit by registry name."""
    try:
        return SCHEMES[name]()
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; "
                       f"known: {sorted(SCHEMES)}") from None


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and scope knobs shared by every experiment."""

    benchmarks: Tuple[str, ...] = tuple(PROFILES)
    #: Committed instructions per thread in fault-free runs.
    dynamic_target: int = 20_000
    smt_copies: int = 2
    #: Faults per benchmark in the characterisation campaign (paper:
    #: 15,000; the laptop default trades sample size for wall-clock).
    num_faults: int = 120
    warmup_commits: int = 400
    window_commits: int = 150
    max_window_cycles: int = 40_000
    seed: int = 7
    #: "fixed" uses ``srt_fixed_coverage`` for SRT-iso's thinning;
    #: "measured" uses each benchmark's measured FaultHound coverage
    #: (requires campaigns, so it is slower).
    srt_coverage_mode: str = "fixed"
    srt_fixed_coverage: float = 0.75

    def quick(self) -> "ExperimentConfig":
        """A smaller copy for smoke tests."""
        return replace(self, dynamic_target=3_000, num_faults=12,
                       warmup_commits=200, window_commits=100)


# ----------------------------------------------------------------------
# run records
# ----------------------------------------------------------------------
@dataclass
class FaultFreeRun:
    """Derived results of one fault-free (timing/energy) run."""

    benchmark: str
    scheme: str
    cycles: int
    committed: int
    fp_rate: float
    energy: EnergyBreakdown
    replay_events: int
    rollback_events: int
    singleton_reexecs: int
    branch_mispredicts: int
    ipc: float


class ExperimentContext:
    """Caches programs, runs and campaigns across figure regenerations."""

    def __init__(self, cfg: ExperimentConfig | None = None,
                 hw: HardwareConfig | None = None):
        self.cfg = cfg or ExperimentConfig()
        self.hw = hw or HardwareConfig()
        self._programs: Dict[str, List] = {}
        self._lengths: Dict[str, List[int]] = {}
        self._fault_free: Dict[Tuple[str, str], FaultFreeRun] = {}
        self._srt: Dict[Tuple[str, float], FaultFreeRun] = {}
        self._campaigns: Dict[str, Tuple[Campaign, CampaignResult]] = {}
        self._coverage: Dict[Tuple[str, str], CampaignResult] = {}
        self._energy_model = EnergyModel()

    # -- workloads ------------------------------------------------------
    def programs(self, benchmark: str) -> List:
        if benchmark not in self._programs:
            profile = PROFILES[benchmark]
            self._programs[benchmark] = build_smt_programs(
                profile, self.cfg.dynamic_target, copies=self.cfg.smt_copies)
        return self._programs[benchmark]

    def lengths(self, benchmark: str) -> List[int]:
        if benchmark not in self._lengths:
            self._lengths[benchmark] = [
                dynamic_length(p) for p in self.programs(benchmark)]
        return self._lengths[benchmark]

    def make_core(self, benchmark: str, scheme: str) -> PipelineCore:
        return PipelineCore(self.programs(benchmark), hw=self.hw,
                            screening=scheme_unit(scheme))

    # -- fault-free timing/energy runs -----------------------------------
    def fault_free(self, benchmark: str, scheme: str) -> FaultFreeRun:
        key = (benchmark, scheme)
        if key not in self._fault_free:
            self._fault_free[key] = self._run_fault_free(benchmark, scheme)
        return self._fault_free[key]

    def _run_fault_free(self, benchmark: str, scheme: str) -> FaultFreeRun:
        core = self.make_core(benchmark, scheme)
        # Warm caches, predictors and filters, then measure the
        # false-positive rate over the steady-state region only.
        warm_total = self.cfg.warmup_commits * len(core.threads)
        core.run_until_commits(warm_total)
        unit = core.screening
        checks_before = dict(unit.action_counts)
        committed_before = core.stats.committed
        core.run(max_cycles=8_000_000)
        steady_committed = core.stats.committed - committed_before
        from ..core.actions import CheckAction
        steady_actions = sum(
            unit.action_counts[a] - checks_before.get(a, 0)
            for a in (CheckAction.REPLAY, CheckAction.SQUASH,
                      CheckAction.SINGLETON))
        rate = (steady_actions / steady_committed
                if steady_committed else 0.0)
        return FaultFreeRun(
            benchmark=benchmark, scheme=scheme,
            cycles=core.stats.cycles, committed=core.stats.committed,
            fp_rate=rate, energy=self._energy_model.compute(core),
            replay_events=core.stats.replay_events,
            rollback_events=core.stats.rollback_events,
            singleton_reexecs=core.stats.singleton_reexecs,
            branch_mispredicts=core.stats.branch_mispredicts,
            ipc=core.stats.ipc)

    # -- SRT-iso ----------------------------------------------------------
    def srt_run(self, benchmark: str,
                coverage: Optional[float] = None) -> FaultFreeRun:
        if coverage is None:
            coverage = self.srt_coverage(benchmark)
        coverage = round(coverage, 3)
        key = (benchmark, coverage)
        if key not in self._srt:
            core = srt_iso_core(self.programs(benchmark), hw=self.hw,
                                coverage=coverage,
                                lengths=self.lengths(benchmark))
            core.run(max_cycles=8_000_000)
            self._srt[key] = FaultFreeRun(
                benchmark=benchmark, scheme=f"srt-iso@{coverage}",
                cycles=core.stats.cycles, committed=core.stats.committed,
                fp_rate=0.0, energy=self._energy_model.compute(core),
                replay_events=0, rollback_events=0, singleton_reexecs=0,
                branch_mispredicts=core.stats.branch_mispredicts,
                ipc=core.stats.ipc)
        return self._srt[key]

    def srt_coverage(self, benchmark: str) -> float:
        if self.cfg.srt_coverage_mode == "measured":
            return self.coverage(benchmark, "faulthound").coverage
        return self.cfg.srt_fixed_coverage

    # -- campaigns --------------------------------------------------------
    def campaign(self, benchmark: str) -> Tuple[Campaign, CampaignResult]:
        if benchmark not in self._campaigns:
            cfg = self.cfg
            campaign = Campaign(
                benchmark,
                lambda: self.make_core(benchmark, "baseline"),
                num_phys_regs=self.hw.phys_regs,
                num_threads=self.cfg.smt_copies,
                num_faults=cfg.num_faults, seed=cfg.seed,
                warmup_commits=cfg.warmup_commits,
                window_commits=cfg.window_commits,
                max_window_cycles=cfg.max_window_cycles)
            characterization = campaign.characterize()
            self._campaigns[benchmark] = (campaign, characterization)
        return self._campaigns[benchmark]

    def coverage(self, benchmark: str, scheme: str) -> CampaignResult:
        key = (benchmark, scheme)
        if key not in self._coverage:
            campaign, characterization = self.campaign(benchmark)
            self._coverage[key] = campaign.run_coverage(
                scheme, lambda: self.make_core(benchmark, scheme),
                characterization)
        return self._coverage[key]


__all__ = ["ExperimentConfig", "ExperimentContext", "FaultFreeRun",
           "SCHEMES", "scheme_unit"]
