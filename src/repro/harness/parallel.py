"""Process-parallel execution layer for campaigns and figure artefacts.

Two fan-out granularities, both bit-for-bit identical to serial
execution because every worker re-derives its state from the explicit
seeds in :class:`~repro.harness.experiment.ExperimentConfig` (design
decision #10 in DESIGN.md — nothing is shared between workers except the
immutable configuration):

- **artefact level** — whole fault-free timing runs, SRT-iso runs,
  characterisation campaigns and (benchmark, scheme) coverage phases
  are independent given the configuration; :meth:`ExperimentContext.
  prefetch` fans them out across a worker pool;
- **window level** — inside one campaign, the planned fault list is
  split into contiguous chunks; each worker fast-forwards a fresh golden
  core through the preceding windows (golden-only replay, no tandem
  copies) and classifies only its chunk. The serial golden core never
  rewinds, so the replayed prefix reaches exactly the state the serial
  classifier would carry into the chunk.

Workers are plain processes (``concurrent.futures.ProcessPoolExecutor``,
fork start method where available); each keeps a private serial
``ExperimentContext`` memoised per (config, hardware) pair so repeated
tasks for the same configuration share generated programs. If a pool
cannot be created (restricted sandboxes), execution silently degrades to
the serial path — same results, no parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..config import HardwareConfig
from ..faults import CampaignResult
from ..faults.classifier import WindowResult
from ..faults.model import FaultRecord
from ..obs.events import NULL_LOG, WORKER_DIR_ENV, worker_task_span

# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------
@dataclass
class ContextMetrics:
    """Per-context execution instrumentation (cache traffic, per-phase
    wall-clock, window throughput) — the evidence behind any claimed
    speedup."""

    cache_hits: int = 0
    cache_misses: int = 0
    windows: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def note_phase(self, phase: str, seconds: float,
                   windows: int = 0) -> None:
        self.phase_seconds[phase] = (self.phase_seconds.get(phase, 0.0)
                                     + seconds)
        self.windows += windows

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def summary(self) -> str:
        phases = " ".join(f"{name}={seconds:.2f}s" for name, seconds
                          in sorted(self.phase_seconds.items()))
        rate = (self.windows / self.total_seconds
                if self.total_seconds > 0 else 0.0)
        return (f"cache {self.cache_hits} hits / {self.cache_misses} misses"
                f" | {self.windows} windows ({rate:.1f}/s)"
                f" | {phases or 'no phases timed'}")


# ----------------------------------------------------------------------
# pool plumbing
# ----------------------------------------------------------------------
def default_jobs() -> int:
    return os.cpu_count() or 1


def chunk_bounds(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most *chunks* contiguous,
    near-equal ``(lo, hi)`` slices covering every index exactly once."""
    if count <= 0:
        return []
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    bounds = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:      # platforms without fork
        return multiprocessing.get_context("spawn")


class ParallelExecutor:
    """A thin, deterministic fan-out wrapper over a process pool.

    ``map`` preserves task order, so merged results are positionally
    identical to the serial loop. With ``jobs == 1`` (or one task, or a
    pool that fails to start) it degrades to in-process execution.
    """

    def __init__(self, jobs: int | None = None, events=None):
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        self.events = events if events is not None else NULL_LOG
        self._pool_broken = False

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> List[Any]:
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1 or self._pool_broken:
            return [fn(task) for task in tasks]
        # Hand workers their event spool through the environment (fork
        # inherits it); absorb their per-worker files once the fan-out
        # completes so the main log stays the single source of truth.
        spool = self.events.worker_spool() if self.events.enabled else None
        if spool is not None:
            os.environ[WORKER_DIR_ENV] = spool
        try:
            return self._map_pool(fn, tasks)
        finally:
            if spool is not None:
                os.environ.pop(WORKER_DIR_ENV, None)
                self.events.absorb_worker_files()

    def _map_pool(self, fn: Callable[[Any], Any],
                  tasks: List[Any]) -> List[Any]:
        workers = min(self.jobs, len(tasks))
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=_mp_context()) as pool:
                return list(pool.map(fn, tasks, chunksize=1))
        except (OSError, PermissionError) as exc:
            # Restricted environment (no fork/semaphores): fall back to
            # the serial path, once, loudly.
            print(f"repro: process pool unavailable ({exc}); "
                  f"running serially", file=sys.stderr)
            self._pool_broken = True
            return [fn(task) for task in tasks]


# ----------------------------------------------------------------------
# worker-side context (one per process, memoised per configuration)
# ----------------------------------------------------------------------
_WORKER_CONTEXTS: Dict[Tuple[Any, HardwareConfig], Any] = {}


def _worker_context(cfg, hw: HardwareConfig):
    """A serial, cache-less ExperimentContext private to this worker.

    Memoised per (config, hardware) so consecutive tasks for the same
    campaign share generated programs; bounded so a long-lived pool
    cannot accumulate contexts.
    """
    from .experiment import ExperimentContext    # local: avoid cycle
    key = (cfg, hw)
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        if len(_WORKER_CONTEXTS) >= 4:
            _WORKER_CONTEXTS.clear()
        ctx = ExperimentContext(cfg, hw, jobs=1, cache=None)
        _WORKER_CONTEXTS[key] = ctx
    return ctx


# ----------------------------------------------------------------------
# artefact-level tasks (whole runs / campaigns per worker)
# ----------------------------------------------------------------------
def fault_free_task(args) -> Any:
    cfg, hw, benchmark, scheme = args
    with worker_task_span("worker:fault_free", benchmark=benchmark,
                          scheme=scheme):
        return _worker_context(cfg, hw).fault_free(benchmark, scheme)


def srt_task(args) -> Any:
    cfg, hw, benchmark, coverage = args
    with worker_task_span("worker:srt", benchmark=benchmark,
                          coverage=coverage):
        return _worker_context(cfg, hw).srt_run(benchmark, coverage)


def characterize_task(args) -> CampaignResult:
    cfg, hw, benchmark = args
    with worker_task_span("worker:characterize", benchmark=benchmark):
        _, characterization = _worker_context(cfg, hw).campaign(benchmark)
        return characterization


def coverage_task(args) -> CampaignResult:
    cfg, hw, benchmark, scheme, characterization = args
    with worker_task_span("worker:coverage", benchmark=benchmark,
                          scheme=scheme):
        ctx = _worker_context(cfg, hw)
        campaign = ctx.build_campaign(benchmark)
        return campaign.run_coverage(
            scheme, lambda: ctx.make_core(benchmark, scheme),
            characterization)


# ----------------------------------------------------------------------
# window-level tasks (chunks of one campaign per worker)
# ----------------------------------------------------------------------
def window_chunk_task(args) -> List[WindowResult]:
    """Classify ``records[lo:hi]`` after a golden-only fast-forward
    through ``records[:lo]`` (scheme None = baseline characterisation)."""
    cfg, hw, benchmark, scheme, records, lo, hi = args
    with worker_task_span("worker:window_chunk", benchmark=benchmark,
                          scheme=scheme or "baseline", lo=lo, hi=hi):
        ctx = _worker_context(cfg, hw)
        campaign = ctx.build_campaign(benchmark)
        if scheme is None:
            factory = campaign.baseline_factory
        else:
            factory = lambda: ctx.make_core(benchmark, scheme)
        classifier = campaign.classifier(factory)
        return classifier.run(records[lo:hi], skip=records[:lo])


def classify_windows_parallel(cfg, hw, benchmark: str, scheme,
                              records: Sequence[FaultRecord],
                              executor: ParallelExecutor
                              ) -> List[WindowResult]:
    """Fan one campaign's fault windows out across the pool; results are
    positionally identical to ``classifier.run(records)``."""
    records = list(records)
    tasks = [(cfg, hw, benchmark, scheme, records, lo, hi)
             for lo, hi in chunk_bounds(len(records), executor.jobs)]
    chunks = executor.map(window_chunk_task, tasks)
    return [window for chunk in chunks for window in chunk]


__all__ = [
    "ContextMetrics",
    "ParallelExecutor",
    "chunk_bounds",
    "classify_windows_parallel",
    "default_jobs",
    "fault_free_task",
    "srt_task",
    "characterize_task",
    "coverage_task",
    "window_chunk_task",
]
