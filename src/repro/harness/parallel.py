"""Process-parallel execution layer for campaigns and figure artefacts.

Two fan-out granularities, both bit-for-bit identical to serial
execution because every worker re-derives its state from the explicit
seeds in :class:`~repro.harness.experiment.ExperimentConfig` (design
decision #10 in DESIGN.md — nothing is shared between workers except the
immutable configuration):

- **artefact level** — whole fault-free timing runs, SRT-iso runs,
  characterisation campaigns and (benchmark, scheme) coverage phases
  are independent given the configuration; :meth:`ExperimentContext.
  prefetch` fans them out across a worker pool;
- **window level** — inside one campaign, the planned fault list is
  split into contiguous chunks; the dispatcher runs *one* golden pass
  that captures a :class:`~repro.pipeline.checkpoint.CoreCheckpoint` at
  each chunk boundary (reusing cached ones when the artifact cache has
  them) and ships each worker its boundary checkpoint. Workers restore
  the checkpoint and classify only their chunk — no per-worker prefix
  replay, so total golden work is linear in the fault count instead of
  quadratic. The serial golden core never rewinds, and checkpoint
  restore is bit-for-bit the state the serial classifier would carry
  into the chunk.

Workers are plain processes (``concurrent.futures.ProcessPoolExecutor``,
fork start method where available); each keeps a private serial
``ExperimentContext`` memoised per (config, hardware) pair so repeated
tasks for the same configuration share generated programs. If a pool
cannot be created (restricted sandboxes), execution silently degrades to
the serial path — same results, no parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..config import HardwareConfig
from ..faults import CampaignResult
from ..faults.classifier import WindowResult
from ..faults.model import FaultRecord
from ..obs.events import NULL_LOG, WORKER_DIR_ENV, worker_task_span
from ..obs.metrics import NULL_METRICS, SECONDS_BUCKETS, worker_metrics
from ..pipeline.checkpoint import CoreCheckpoint

# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------
@dataclass
class ContextMetrics:
    """Per-context execution instrumentation (cache traffic, per-phase
    wall-clock, window throughput) — the evidence behind any claimed
    speedup."""

    cache_hits: int = 0
    cache_misses: int = 0
    windows: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def note_phase(self, phase: str, seconds: float,
                   windows: int = 0) -> None:
        self.phase_seconds[phase] = (self.phase_seconds.get(phase, 0.0)
                                     + seconds)
        self.windows += windows

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def summary(self) -> str:
        phases = " ".join(f"{name}={seconds:.2f}s" for name, seconds
                          in sorted(self.phase_seconds.items()))
        rate = (self.windows / self.total_seconds
                if self.total_seconds > 0 else 0.0)
        return (f"cache {self.cache_hits} hits / {self.cache_misses} misses"
                f" | {self.windows} windows ({rate:.1f}/s)"
                f" | {phases or 'no phases timed'}")


# ----------------------------------------------------------------------
# pool plumbing
# ----------------------------------------------------------------------
def default_jobs() -> int:
    return os.cpu_count() or 1


def chunk_bounds(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most *chunks* contiguous,
    near-equal ``(lo, hi)`` slices covering every index exactly once."""
    if count <= 0:
        return []
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    bounds = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def align_chunk_bounds(bounds: Sequence[Tuple[int, int]],
                       records: Sequence[FaultRecord]
                       ) -> List[Tuple[int, int]]:
    """Snap chunk cuts so faults sharing an ``inject_at_commit`` (one
    run-window) never split across chunks.

    A raw :func:`chunk_bounds` cut through the middle of a window both
    wastes a checkpoint restore (two workers replay the same golden
    window) and would split a lane batch, so every producer of window
    chunks runs its bounds through this. Each interior cut is snapped
    *down* to the start of the window it lands in; cuts that collapse
    onto each other drop the resulting empty chunk. Bounds may cover
    several non-contiguous runs (the supervisor's gap list) — cuts only
    move within their own run, so covered/quarantined windows between
    runs are never re-entered. Plans with all-distinct injection points
    (every evenly spaced campaign) pass through unchanged, keeping chunk
    identities — cache keys, journal chunk keys — stable.
    """
    bounds = list(bounds)
    if not bounds:
        return []
    runs: List[List[Tuple[int, int]]] = [[bounds[0]]]
    for bound in bounds[1:]:
        if bound[0] == runs[-1][-1][1]:
            runs[-1].append(bound)
        else:
            runs.append([bound])
    aligned: List[Tuple[int, int]] = []
    for run in runs:
        floor, ceil = run[0][0], run[-1][1]
        edges = [floor]
        for lo, _hi in run[1:]:
            cut = lo
            while cut > floor and (records[cut].inject_at_commit
                                   == records[cut - 1].inject_at_commit):
                cut -= 1
            # a cut snapped at or below the previous edge leaves an
            # empty chunk: drop it (the previous chunk absorbs it)
            if cut > edges[-1]:
                edges.append(cut)
        edges.append(ceil)
        aligned.extend((a, b) for a, b in zip(edges, edges[1:]) if b > a)
    return aligned


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:      # platforms without fork
        return multiprocessing.get_context("spawn")


class ParallelExecutor:
    """A thin, deterministic fan-out wrapper over a process pool.

    ``map`` preserves task order, so merged results are positionally
    identical to the serial loop. With ``jobs == 1`` (or one task, or a
    pool that fails to start) it degrades to in-process execution.
    """

    def __init__(self, jobs: int | None = None, events=None, metrics=None):
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        self.events = events if events is not None else NULL_LOG
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._pool_broken = False

    def map(self, fn: Callable[[Any], Any],
            tasks: Sequence[Any]) -> List[Any]:
        tasks = list(tasks)
        self.metrics.counter("dispatcher_tasks_total").inc(len(tasks))
        if self.jobs == 1 or len(tasks) <= 1 or self._pool_broken:
            return [fn(task) for task in tasks]
        self.metrics.counter("dispatcher_fanouts_total").inc()
        self.metrics.gauge("dispatcher_jobs").set(self.jobs)
        # Hand workers their event spool through the environment (fork
        # inherits it); absorb their per-worker files once the fan-out
        # completes so the main log stays the single source of truth.
        spool = self.events.worker_spool() if self.events.enabled else None
        if spool is not None:
            os.environ[WORKER_DIR_ENV] = spool
        try:
            return self._map_pool(fn, tasks)
        finally:
            if spool is not None:
                os.environ.pop(WORKER_DIR_ENV, None)
                self.events.absorb_worker_files()

    def _map_pool(self, fn: Callable[[Any], Any],
                  tasks: List[Any]) -> List[Any]:
        workers = min(self.jobs, len(tasks))
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=_mp_context()) as pool:
                return list(pool.map(fn, tasks, chunksize=1))
        except (OSError, PermissionError) as exc:
            # Restricted environment (no fork/semaphores): fall back to
            # the serial path, once, loudly — on stderr for humans and
            # as a degradation event for the machine-read log.
            print(f"repro: process pool unavailable ({exc}); "
                  f"running serially", file=sys.stderr)
            self.events.emit("degradation", reason="pool_unavailable",
                             jobs_from=workers, jobs_to=1,
                             detail=f"{type(exc).__name__}: {exc}")
            self._pool_broken = True
            return [fn(task) for task in tasks]


# ----------------------------------------------------------------------
# worker-side context (one per process, memoised per configuration)
# ----------------------------------------------------------------------
_WORKER_CONTEXTS: Dict[Tuple[Any, HardwareConfig], Any] = {}


def _worker_context(cfg, hw: HardwareConfig):
    """A serial, cache-less ExperimentContext private to this worker.

    Memoised per (config, hardware) so consecutive tasks for the same
    campaign share generated programs; bounded so a long-lived pool
    cannot accumulate contexts.
    """
    from .experiment import ExperimentContext    # local: avoid cycle
    key = (cfg, hw)
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        if len(_WORKER_CONTEXTS) >= 4:
            _WORKER_CONTEXTS.clear()
        ctx = ExperimentContext(cfg, hw, jobs=1, cache=None)
        _WORKER_CONTEXTS[key] = ctx
    return ctx


# ----------------------------------------------------------------------
# artefact-level tasks (whole runs / campaigns per worker)
# ----------------------------------------------------------------------
def fault_free_task(args) -> Any:
    cfg, hw, benchmark, scheme = args
    with worker_task_span("worker:fault_free", benchmark=benchmark,
                          scheme=scheme):
        return _worker_context(cfg, hw).fault_free(benchmark, scheme)


def srt_task(args) -> Any:
    cfg, hw, benchmark, coverage = args
    with worker_task_span("worker:srt", benchmark=benchmark,
                          coverage=coverage):
        return _worker_context(cfg, hw).srt_run(benchmark, coverage)


def characterize_task(args) -> CampaignResult:
    cfg, hw, benchmark = args
    with worker_task_span("worker:characterize", benchmark=benchmark):
        _, characterization = _worker_context(cfg, hw).campaign(benchmark)
        return characterization


def coverage_task(args) -> CampaignResult:
    cfg, hw, benchmark, scheme, characterization = args
    with worker_task_span("worker:coverage", benchmark=benchmark,
                          scheme=scheme):
        ctx = _worker_context(cfg, hw)
        campaign = ctx.build_campaign(benchmark)
        return campaign.run_coverage(
            scheme, lambda: ctx.make_core(benchmark, scheme),
            characterization)


# ----------------------------------------------------------------------
# window-level tasks (chunks of one campaign per worker)
# ----------------------------------------------------------------------
@dataclass
class CheckpointStats:
    """Dispatcher-side checkpoint instrumentation for one fan-out (feeds
    :class:`~repro.faults.campaign.ThroughputRecord`)."""

    captured: int = 0
    hits: int = 0
    golden_pass_seconds: float = 0.0


def _checkpoint_key(cache, cfg, hw, benchmark: str, scheme,
                    records: Sequence[FaultRecord], lo: int) -> str:
    """Content-addressed key for the chunk-boundary checkpoint at window
    *lo*. The golden core's state there is a pure function of the
    configuration, the workload, the scheme, and the *content* of the
    prefix records it advanced through (an LSQ fault's probe decides
    whether a window arms), so all of those go into the digest."""
    return cache.key("checkpoint", cfg=cfg, hw=hw, benchmark=benchmark,
                     scheme=scheme or "baseline", window=lo,
                     prefix=list(records[:lo]))


def chunk_checkpoints(cfg, hw, benchmark: str, scheme,
                      records: Sequence[FaultRecord],
                      bounds: Sequence[Tuple[int, int]],
                      cache=None, events=None, ctx=None,
                      stats: Optional[CheckpointStats] = None,
                      jobs: int = 1) -> List[CoreCheckpoint]:
    """One golden pass producing a :class:`CoreCheckpoint` per chunk
    boundary — the linear replacement for per-worker prefix replay.

    Boundaries are visited in ascending window order. A boundary whose
    checkpoint the artifact cache already holds is a hit (no golden work
    at all); a miss advances a live golden core from the nearest earlier
    state — the previous boundary's live core, or a restored cached
    checkpoint — so the pass never restarts from window zero. With a
    fully warm cache the entire pass does zero stepping.
    """
    events = events if events is not None else NULL_LOG
    stats = stats if stats is not None else CheckpointStats()
    if ctx is None:
        ctx = _worker_context(cfg, hw)
    campaign = ctx.build_campaign(benchmark)
    if scheme is None:
        factory = campaign.baseline_factory
    else:
        factory = lambda: ctx.make_core(benchmark, scheme)
    classifier = campaign.classifier(factory)
    records = list(records)
    label = scheme or "baseline"
    checkpoints: List[CoreCheckpoint] = []
    golden = None       # live core, advanced through records[:golden_at]
    golden_at = 0
    base: Optional[CoreCheckpoint] = None   # nearest cached boundary
    captured_before, hits_before = stats.captured, stats.hits
    started = time.perf_counter()
    for lo, _hi in bounds:
        key = checkpoint = None
        if cache is not None:
            key = _checkpoint_key(cache, cfg, hw, benchmark, scheme,
                                  records, lo)
            checkpoint = cache.get("checkpoint", key)
            events.cache_event("checkpoint", key,
                               hit=checkpoint is not None)
        if checkpoint is not None:
            stats.hits += 1
            events.emit("checkpoint", action="hit", window=lo,
                        benchmark=benchmark, scheme=label,
                        bytes=checkpoint.nbytes,
                        committed=checkpoint.committed,
                        cycle=checkpoint.cycle)
            # Later misses resume from this checkpoint, not from any
            # earlier live core.
            base, golden = checkpoint, None
        else:
            if golden is None:
                if base is not None:
                    with events.span("checkpoint:restore",
                                     benchmark=benchmark, scheme=label,
                                     window=base.window_index):
                        golden = base.restore()
                    golden_at = base.window_index
                else:
                    golden = factory()
                    golden_at = 0
            with events.span("checkpoint:capture", benchmark=benchmark,
                             scheme=label, window=lo):
                classifier.advance_golden(golden, records[golden_at:lo])
                golden_at = lo
                # chunk boundaries are the natural sanitizer sites: a
                # structurally broken golden core must never be captured
                # into the checkpoint cache (no-op when not armed)
                golden.check_invariants()
                resume = records[lo - 1].inject_at_commit if lo else 0
                checkpoint = CoreCheckpoint.capture(
                    golden, window_index=lo, resume_at_commit=resume)
            stats.captured += 1
            events.emit("checkpoint", action="capture", window=lo,
                        benchmark=benchmark, scheme=label,
                        bytes=checkpoint.nbytes,
                        committed=checkpoint.committed,
                        cycle=checkpoint.cycle)
            if cache is not None and cache.put("checkpoint", key,
                                               checkpoint):
                from ..obs.manifest import (build_manifest,
                                            manifest_path_for,
                                            write_manifest)
                manifest = build_manifest(
                    "checkpoint", cfg, hw,
                    parts=dict(benchmark=benchmark, scheme=label,
                               window=lo, prefix_records=lo),
                    key=key, jobs=jobs)
                write_manifest(
                    manifest_path_for(
                        cache.artifact_path("checkpoint", key)),
                    manifest)
        checkpoints.append(checkpoint)
    elapsed = time.perf_counter() - started
    stats.golden_pass_seconds += elapsed
    metrics = getattr(ctx, "metrics_registry", NULL_METRICS)
    if metrics.enabled:
        metrics.histogram("golden_pass_seconds",
                          SECONDS_BUCKETS).observe(elapsed)
        metrics.counter("checkpoints_captured_total").inc(
            stats.captured - captured_before)
        metrics.counter("checkpoint_hits_total").inc(
            stats.hits - hits_before)
    return checkpoints


def window_chunk_task(args) -> List[WindowResult]:
    """Classify ``records[lo:hi]`` in a chunk worker.

    With a chunk-boundary :class:`CoreCheckpoint` (the 8th task element)
    the worker restores it and starts classifying immediately; without
    one it falls back to the golden-only fast-forward through
    ``records[:lo]`` (the legacy prefix-replay path, kept as the
    checkpoint-free reference). Scheme None = baseline characterisation.
    """
    if len(args) == 7:      # legacy 7-tuple: no checkpoint
        cfg, hw, benchmark, scheme, records, lo, hi = args
        checkpoint = None
    else:
        cfg, hw, benchmark, scheme, records, lo, hi, checkpoint = args
    with worker_task_span("worker:window_chunk", benchmark=benchmark,
                          scheme=scheme or "baseline", lo=lo, hi=hi,
                          checkpointed=checkpoint is not None):
        ctx = _worker_context(cfg, hw)
        campaign = ctx.build_campaign(benchmark)
        if scheme is None:
            factory = campaign.baseline_factory
        else:
            factory = lambda: ctx.make_core(benchmark, scheme)
        # worker_metrics() is the per-process accumulator, drained into
        # the worker's event spool by the enclosing worker_task_span
        classifier = campaign.classifier(factory,
                                         metrics=worker_metrics())
        if checkpoint is None:
            return classifier.run(records[lo:hi], skip=records[:lo])
        with worker_task_span("checkpoint:restore", window=lo,
                              bytes=checkpoint.nbytes):
            golden = checkpoint.restore()
        return classifier.run(records[lo:hi], golden=golden,
                              resume_at_commit=checkpoint.resume_at_commit)


def run_chunk_descriptor(descriptor) -> List[WindowResult]:
    """Classify one shipped fabric chunk descriptor.

    The descriptor (a dict pushed through the fabric store by
    :class:`repro.harness.executor.RemoteChunkExecutor`) is
    self-contained — config, hardware, fault plan, window range and the
    boundary checkpoint — so any agent on any host runs exactly the
    computation :func:`window_chunk_task` would run for a local pool
    worker, bit for bit.
    """
    return window_chunk_task((
        descriptor["cfg"], descriptor["hw"], descriptor["benchmark"],
        descriptor["scheme"], descriptor["records"], descriptor["lo"],
        descriptor["hi"], descriptor.get("checkpoint")))


def classify_windows_parallel(cfg, hw, benchmark: str, scheme,
                              records: Sequence[FaultRecord],
                              executor: ParallelExecutor,
                              cache=None, ctx=None,
                              use_checkpoints: bool = True,
                              checkpoint_stats: Optional[CheckpointStats]
                              = None) -> List[WindowResult]:
    """Fan one campaign's fault windows out across the pool; results are
    positionally identical to ``classifier.run(records)``.

    By default the dispatcher runs one golden pass capturing (or, given
    *cache*, reloading) a checkpoint per chunk boundary and ships each
    worker its boundary; ``use_checkpoints=False`` keeps the legacy
    per-worker prefix replay. *checkpoint_stats*, when given, accumulates
    the dispatcher's capture/hit counts and golden-pass wall-clock.
    """
    records = list(records)
    bounds = align_chunk_bounds(chunk_bounds(len(records), executor.jobs),
                                records)
    if use_checkpoints and bounds:
        checkpoints = chunk_checkpoints(
            cfg, hw, benchmark, scheme, records, bounds,
            cache=cache, events=executor.events, ctx=ctx,
            stats=checkpoint_stats, jobs=executor.jobs)
    else:
        checkpoints = [None] * len(bounds)
    tasks = [(cfg, hw, benchmark, scheme, records, lo, hi, checkpoint)
             for (lo, hi), checkpoint in zip(bounds, checkpoints)]
    chunks = executor.map(window_chunk_task, tasks)
    return [window for chunk in chunks for window in chunk]


__all__ = [
    "CheckpointStats",
    "ContextMetrics",
    "ParallelExecutor",
    "align_chunk_bounds",
    "chunk_bounds",
    "chunk_checkpoints",
    "classify_windows_parallel",
    "default_jobs",
    "fault_free_task",
    "srt_task",
    "characterize_task",
    "coverage_task",
    "run_chunk_descriptor",
    "window_chunk_task",
]
