"""One entry point per paper table/figure (DESIGN.md §3).

Each function returns a dict with the figure's data plus a ``text`` key
holding a rendered paper-style table; the benchmark suite prints these and
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

from ..analysis.charts import bar_chart, log_sparkline
from ..analysis.locality import (bit_change_fractions, collect_mem_streams,
                                 mean_bits_changed)
from ..analysis.metrics import arithmetic_mean, perf_overhead
from ..analysis.tables import format_table
from ..config import FaultHoundConfig, HardwareConfig, table2_rows
from ..faults import FaultClass
from ..workloads import PROFILES, SUITES
from .experiment import ExperimentContext

#: Presentation order: the paper's benchmark ordering with suite means.
def _ordered(benchmarks: Sequence[str]) -> List[str]:
    ordered = [n for suite in SUITES.values() for n in suite
               if n in benchmarks]
    return ordered or list(benchmarks)


def _figure_span(fn):
    """Wrap a figure step in a ``figure:<name>`` event-log span, so one
    figure's phases nest under one parent in the observability trail."""
    @functools.wraps(fn)
    def wrapper(ctx: ExperimentContext, *args, **kwargs):
        with ctx.events.span(f"figure:{fn.__name__}"):
            return fn(ctx, *args, **kwargs)
    return wrapper


# ----------------------------------------------------------------------
# Tables 1 and 2
# ----------------------------------------------------------------------
def table1() -> Dict:
    """Table 1: the benchmark roster and its locality profiles."""
    rows = {}
    for name in _ordered(PROFILES):
        p = PROFILES[name]
        rows[name] = {
            "suite": p.suite,
            "ws_words": str(p.working_set_words),
            "ptr_chase": f"{p.pointer_chase:.2f}",
            "value_model": p.value_model,
            "branchiness": f"{p.branchiness:.2f}",
        }
    return {"rows": rows,
            "text": format_table("Table 1: benchmarks", rows)}


def table2(hw: HardwareConfig | None = None) -> Dict:
    """Table 2: hardware parameters."""
    rows = {k: {"value": v} for k, v in
            table2_rows(hw or HardwareConfig(), FaultHoundConfig()).items()}
    return {"rows": rows,
            "text": format_table("Table 2: hardware parameters", rows)}


# ----------------------------------------------------------------------
# Figure 6: percent change in bit positions
# ----------------------------------------------------------------------
@_figure_span
def fig6(ctx: ExperimentContext, max_instructions: int = 30_000) -> Dict:
    """Per-bit-position change fractions for the three checked streams,
    aggregated over every benchmark (log-Y in the paper)."""
    programs = []
    for name in _ordered(ctx.cfg.benchmarks):
        programs.extend(ctx.programs(name))
    streams = collect_mem_streams(programs, max_instructions)
    fractions = {kind: bit_change_fractions(values)
                 for kind, values in streams.items()}
    summary_rows = {}
    for kind, frac in fractions.items():
        below_1pct = sum(1 for f in frac if f < 0.01)
        summary_rows[kind] = {
            "bits<1%": float(below_1pct),
            "max_bit_frac": max(frac),
            "mean_bits_changed": mean_bits_changed(streams[kind]),
        }
    profile_lines = [
        f"  {kind:12s} bit63..bit0 (log scale): "
        f"{log_sparkline(list(reversed(frac)))}"
        for kind, frac in fractions.items()]
    return {
        "fractions": fractions,
        "rows": summary_rows,
        "text": (format_table(
            "Figure 6: bit-position change characterisation", summary_rows)
            + "\n" + "\n".join(profile_lines)),
    }


# ----------------------------------------------------------------------
# Figure 7: fault characterisation
# ----------------------------------------------------------------------
@_figure_span
def fig7(ctx: ExperimentContext) -> Dict:
    """Masked / noisy / SDC fractions per benchmark (plus overall mean)."""
    ctx.prefetch(campaigns=True)
    rows = {}
    for name in _ordered(ctx.cfg.benchmarks):
        _, characterization = ctx.campaign(name)
        rows[name] = {
            "masked": characterization.class_fraction(FaultClass.MASKED),
            "noisy": characterization.class_fraction(FaultClass.NOISY),
            "sdc": characterization.class_fraction(FaultClass.SDC),
        }
    rows["MEAN"] = {
        key: arithmetic_mean(r[key] for n, r in rows.items() if n != "MEAN")
        for key in ("masked", "noisy", "sdc")}
    return {"rows": rows,
            "text": format_table("Figure 7: fault characterisation",
                                 rows, percent=True)}


# ----------------------------------------------------------------------
# Figure 8: coverage and false-positive rates
# ----------------------------------------------------------------------
FIG8_SCHEMES = ("pbfs", "pbfs-biased", "fh-backend", "faulthound")


@_figure_span
def fig8(ctx: ExperimentContext,
         schemes: Sequence[str] = FIG8_SCHEMES) -> Dict:
    """(a) SDC coverage and (b) false-positive rate per scheme."""
    ctx.prefetch(fault_free=schemes, coverage=schemes)
    coverage_rows: Dict[str, Dict[str, float]] = {}
    fp_rows: Dict[str, Dict[str, float]] = {}
    for name in _ordered(ctx.cfg.benchmarks):
        coverage_rows[name] = {
            s: ctx.coverage(name, s).coverage for s in schemes}
        fp_rows[name] = {
            s: ctx.fault_free(name, s).fp_rate for s in schemes}
    for rows in (coverage_rows, fp_rows):
        rows["MEAN"] = {
            s: arithmetic_mean(r[s] for n, r in rows.items() if n != "MEAN")
            for s in schemes}
    # pooled Wilson intervals per scheme (small per-benchmark SDC samples)
    interval_rows: Dict[str, Dict[str, str]] = {}
    for s in schemes:
        covered = sum(ctx.coverage(n, s).covered_count
                      for n in _ordered(ctx.cfg.benchmarks))
        total = sum(ctx.coverage(n, s).sdc_count
                    for n in _ordered(ctx.cfg.benchmarks))
        from ..analysis.stats import proportion
        interval_rows[s] = {"pooled coverage": str(proportion(covered,
                                                              total))}
    return {
        "coverage": coverage_rows,
        "fp_rate": fp_rows,
        "intervals": interval_rows,
        "text": (format_table("Figure 8a: SDC coverage", coverage_rows,
                              percent=True)
                 + "\n\n"
                 + format_table("Figure 8a (pooled, Wilson 95%)",
                                interval_rows)
                 + "\n\n"
                 + format_table("Figure 8b: false-positive rate", fp_rows,
                                percent=True, decimals=4)),
    }


# ----------------------------------------------------------------------
# Figure 9: performance degradation
# ----------------------------------------------------------------------
FIG9_SCHEMES = ("pbfs", "pbfs-biased", "fh-backend", "faulthound")


@_figure_span
def fig9(ctx: ExperimentContext,
         schemes: Sequence[str] = FIG9_SCHEMES,
         include_srt: bool = True) -> Dict:
    """Performance degradation over the no-fault-tolerance baseline
    (log-Y in the paper); SRT-iso is thinned to FaultHound's coverage."""
    ctx.prefetch(fault_free=("baseline",) + tuple(schemes), srt=include_srt)
    rows: Dict[str, Dict[str, float]] = {}
    for name in _ordered(ctx.cfg.benchmarks):
        base = ctx.fault_free(name, "baseline")
        row = {s: perf_overhead(ctx.fault_free(name, s).cycles, base.cycles)
               for s in schemes}
        if include_srt:
            row["srt-iso"] = perf_overhead(
                ctx.srt_run(name).cycles, base.cycles)
        rows[name] = row
    columns = list(next(iter(rows.values())).keys())
    rows["MEAN"] = {
        c: arithmetic_mean(r[c] for n, r in rows.items() if n != "MEAN")
        for c in columns}
    chart = bar_chart("mean degradation (log scale, as in the paper):",
                      rows["MEAN"], log_scale=True, log_floor=1e-3)
    return {"rows": rows,
            "text": format_table("Figure 9: performance degradation",
                                 rows, percent=True) + "\n" + chart}


# ----------------------------------------------------------------------
# Figure 10: energy overhead
# ----------------------------------------------------------------------
FIG10_SCHEMES = ("fh-backend", "faulthound")


@_figure_span
def fig10(ctx: ExperimentContext,
          schemes: Sequence[str] = FIG10_SCHEMES,
          include_srt: bool = True) -> Dict:
    """Energy overhead over the no-fault-tolerance baseline."""
    ctx.prefetch(fault_free=("baseline",) + tuple(schemes), srt=include_srt)
    rows: Dict[str, Dict[str, float]] = {}
    for name in _ordered(ctx.cfg.benchmarks):
        base = ctx.fault_free(name, "baseline").energy
        row = {s: ctx.fault_free(name, s).energy.overhead_vs(base)
               for s in schemes}
        if include_srt:
            row["srt-iso"] = ctx.srt_run(name).energy.overhead_vs(base)
        rows[name] = row
    columns = list(next(iter(rows.values())).keys())
    rows["MEAN"] = {
        c: arithmetic_mean(r[c] for n, r in rows.items() if n != "MEAN")
        for c in columns}
    chart = bar_chart("mean energy overhead:", rows["MEAN"])
    return {"rows": rows,
            "text": format_table("Figure 10: energy overhead", rows,
                                 percent=True) + "\n" + chart}


# ----------------------------------------------------------------------
# Figure 11: SDC fault breakdown
# ----------------------------------------------------------------------
@_figure_span
def fig11(ctx: ExperimentContext, scheme: str = "faulthound") -> Dict:
    """Where FaultHound's SDC coverage goes (six outcome bins)."""
    ctx.prefetch(coverage=(scheme,))
    rows = {}
    for name in _ordered(ctx.cfg.benchmarks):
        rows[name] = ctx.coverage(name, scheme).breakdown()
    keys = list(next(iter(rows.values())).keys())
    rows["MEAN"] = {
        k: arithmetic_mean(r[k] for n, r in rows.items() if n != "MEAN")
        for k in keys}
    return {"rows": rows,
            "text": format_table("Figure 11: SDC fault breakdown", rows,
                                 percent=True)}


# ----------------------------------------------------------------------
# Figure 12: mechanism isolation (overall means only, like the paper)
# ----------------------------------------------------------------------
@_figure_span
def fig12(ctx: ExperimentContext) -> Dict:
    """Three ablations: clustering/second-level on FP rate, replay vs full
    rollback on performance, LSQ check on coverage."""
    ctx.prefetch(
        fault_free=("baseline", "fh-backend", "fh-be-no2level",
                    "fh-be-nocluster-no2level", "fh-be-full-rollback"),
        coverage=("fh-be-nolsq", "fh-backend"))
    benchmarks = _ordered(ctx.cfg.benchmarks)

    def mean_fp(scheme):
        return arithmetic_mean(
            ctx.fault_free(n, scheme).fp_rate for n in benchmarks)

    def mean_perf(scheme):
        return arithmetic_mean(
            perf_overhead(ctx.fault_free(n, scheme).cycles,
                          ctx.fault_free(n, "baseline").cycles)
            for n in benchmarks)

    def mean_cov(scheme):
        return arithmetic_mean(
            ctx.coverage(n, scheme).coverage for n in benchmarks)

    left = {
        "FH-BE-nocluster-no2level": {"fp_rate": mean_fp("fh-be-nocluster-no2level")},
        "FH-BE-no2level": {"fp_rate": mean_fp("fh-be-no2level")},
        "FH-BE": {"fp_rate": mean_fp("fh-backend")},
    }
    middle = {
        "FH-BE-full-rollback": {"perf_overhead": mean_perf("fh-be-full-rollback")},
        "FH-BE": {"perf_overhead": mean_perf("fh-backend")},
    }
    right = {
        "FH-BE-noLSQ": {"coverage": mean_cov("fh-be-nolsq")},
        "FH-BE": {"coverage": mean_cov("fh-backend")},
    }
    text = "\n\n".join([
        format_table("Figure 12 (left): clustering + second-level vs FP rate",
                     left, percent=True, decimals=4),
        format_table("Figure 12 (middle): replay vs full rollback",
                     middle, percent=True),
        format_table("Figure 12 (right): LSQ coverage", right, percent=True),
    ])
    return {"left": left, "middle": middle, "right": right, "text": text}


__all__ = ["table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10",
           "fig11", "fig12", "FIG8_SCHEMES", "FIG9_SCHEMES", "FIG10_SCHEMES"]
