"""Persistence for experiment results.

Regenerating every figure takes real wall-clock, so the harness can
persist each figure's structured rows (plus the config that produced
them) as JSON and reload them later — EXPERIMENTS.md is written from
these artefacts, and reruns can diff against them.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Any, Dict, List, Optional

from .experiment import ExperimentConfig


def _jsonable(value: Any) -> Any:
    """Recursively convert figure payloads to JSON-compatible values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if hasattr(value, "value"):         # enums
        return value.value
    return str(value)


class ResultStore:
    """A directory of ``<name>.json`` result documents."""

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> pathlib.Path:
        if "/" in name or name.startswith("."):
            raise ValueError(f"bad result name {name!r}")
        return self.directory / f"{name}.json"

    def save(self, name: str, payload: Dict[str, Any],
             config: Optional[ExperimentConfig] = None) -> pathlib.Path:
        """Persist *payload* (a figure result; its ``text`` key is kept)."""
        document = {
            "name": name,
            "saved_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "config": _jsonable(config) if config else None,
            "payload": _jsonable(payload),
        }
        path = self._path(name)
        path.write_text(json.dumps(document, indent=2, sort_keys=True))
        return path

    def load(self, name: str) -> Dict[str, Any]:
        return json.loads(self._path(name).read_text())

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def names(self) -> List[str]:
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def delete(self, name: str) -> None:
        self._path(name).unlink(missing_ok=True)


__all__ = ["ResultStore"]
