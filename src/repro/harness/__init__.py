"""Experiment harness: one entry point per paper table/figure."""

from ..faults.campaign import ThroughputRecord
from .cache import ArtifactCache
from .diff import (DiffOutcome, Divergence, FuzzCase, FuzzReport,
                   build_case, lockstep_diff, run_case, run_corpus)
from .experiment import (ExperimentConfig, ExperimentContext, FaultFreeRun,
                         SCHEMES, scheme_unit)
from .parallel import ContextMetrics, ParallelExecutor
from . import figures

__all__ = [
    "ArtifactCache",
    "ContextMetrics",
    "DiffOutcome",
    "Divergence",
    "ExperimentConfig",
    "ExperimentContext",
    "FaultFreeRun",
    "FuzzCase",
    "FuzzReport",
    "ParallelExecutor",
    "SCHEMES",
    "ThroughputRecord",
    "build_case",
    "lockstep_diff",
    "run_case",
    "run_corpus",
    "scheme_unit",
    "figures",
]
