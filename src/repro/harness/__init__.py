"""Experiment harness: one entry point per paper table/figure."""

from ..faults.campaign import ThroughputRecord
from .cache import ArtifactCache
from .experiment import (ExperimentConfig, ExperimentContext, FaultFreeRun,
                         SCHEMES, scheme_unit)
from .parallel import ContextMetrics, ParallelExecutor
from . import figures

__all__ = [
    "ArtifactCache",
    "ContextMetrics",
    "ExperimentConfig",
    "ExperimentContext",
    "FaultFreeRun",
    "ParallelExecutor",
    "SCHEMES",
    "ThroughputRecord",
    "scheme_unit",
    "figures",
]
