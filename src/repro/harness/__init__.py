"""Experiment harness: one entry point per paper table/figure."""

from ..faults.campaign import ThroughputRecord
from .agent import AgentDaemon, list_agents, stop_agents
from .cache import ArtifactCache
from .diff import (DiffOutcome, Divergence, FuzzCase, FuzzReport,
                   build_case, lockstep_diff, run_case, run_corpus)
from .executor import (ChunkExecutor, LocalPoolExecutor,
                       RemoteChunkExecutor, RemotePolicy,
                       SerialChunkExecutor, fabric_store,
                       read_agent_registry)
from .experiment import (ExperimentConfig, ExperimentContext, FaultFreeRun,
                         SCHEMES, scheme_unit)
from .parallel import ContextMetrics, ParallelExecutor
from .spec import (SpecError, compile_file, compile_spec, load_run,
                   load_spec, task_argv, task_key)
from .supervisor import (CampaignAborted, CampaignJournal, EXIT_ABORTED,
                         EXIT_COMPLETE, EXIT_QUARANTINE, PhaseReport,
                         QuarantineRecord, Supervisor, SupervisorPolicy,
                         read_poisoned, summarize_run_dir)
from . import figures

__all__ = [
    "AgentDaemon",
    "ArtifactCache",
    "CampaignAborted",
    "CampaignJournal",
    "ChunkExecutor",
    "ContextMetrics",
    "DiffOutcome",
    "Divergence",
    "EXIT_ABORTED",
    "EXIT_COMPLETE",
    "EXIT_QUARANTINE",
    "ExperimentConfig",
    "ExperimentContext",
    "FaultFreeRun",
    "FuzzCase",
    "FuzzReport",
    "LocalPoolExecutor",
    "ParallelExecutor",
    "PhaseReport",
    "QuarantineRecord",
    "RemoteChunkExecutor",
    "RemotePolicy",
    "SCHEMES",
    "SerialChunkExecutor",
    "SpecError",
    "Supervisor",
    "SupervisorPolicy",
    "ThroughputRecord",
    "build_case",
    "compile_file",
    "compile_spec",
    "fabric_store",
    "list_agents",
    "lockstep_diff",
    "load_run",
    "load_spec",
    "read_agent_registry",
    "read_poisoned",
    "stop_agents",
    "run_case",
    "run_corpus",
    "scheme_unit",
    "summarize_run_dir",
    "task_argv",
    "task_key",
    "figures",
]
