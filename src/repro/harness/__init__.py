"""Experiment harness: one entry point per paper table/figure."""

from .experiment import (ExperimentConfig, ExperimentContext, FaultFreeRun,
                         SCHEMES, scheme_unit)
from . import figures

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "FaultFreeRun",
    "SCHEMES",
    "scheme_unit",
    "figures",
]
