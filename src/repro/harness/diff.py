"""ISA-differential fuzz harness: the OoO core vs. the architectural
interpreter, in lockstep.

The in-order interpreter (:mod:`repro.isa.interpreter`) *defines* the
ISA; the pipeline must commit exactly that state for any program. This
harness makes that contract executable at scale: seeded random programs
(:mod:`repro.workloads.programs`) run through both models simultaneously,
and after every cycle in which a thread committed instructions, that
thread's interpreter is stepped to the same retired-instruction count and
the full architectural state (registers, memory, pc, halt flag) is
diffed. SMT co-schedules run one interpreter per thread. The pipeline
invariant sanitizer (:mod:`repro.pipeline.invariants`) rides along in
collect mode, so each fuzz case checks structural invariants and
architectural equivalence at once.

Driven by ``repro verify`` (CLI) and ``tests/test_differential.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from ..config import HardwareConfig
from ..isa.interpreter import Interpreter
from ..isa.program import Program
from ..pipeline.core import PipelineCore
from ..pipeline.invariants import InvariantSanitizer
from ..workloads.programs import GEN_PROFILES, random_program
from .experiment import scheme_unit


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic corpus entry, fully derived from its seed."""

    seed: int
    profile: str
    threads: int
    scheme: Optional[str]
    body_len: int
    iterations: int

    @property
    def label(self) -> str:
        scheme = self.scheme or "baseline"
        return (f"seed={self.seed} {self.profile} t{self.threads} "
                f"{scheme} body={self.body_len} iters={self.iterations}")


@dataclass(frozen=True)
class Divergence:
    """First observed core/interpreter disagreement."""

    thread_id: int
    cycle: int
    committed: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return (f"t{self.thread_id} cycle {self.cycle} "
                f"commit {self.committed}: {self.kind}: {self.detail}")


@dataclass
class DiffOutcome:
    """Result of one fuzz case."""

    case: FuzzCase
    ok: bool
    cycles: int = 0
    commits: int = 0
    divergence: Optional[Divergence] = None
    invariant_violations: int = 0
    first_violation: str = ""
    mem_order_violations: int = 0
    forwarded_loads: int = 0


def build_case(seed: int) -> FuzzCase:
    """The corpus schedule: seeds rotate through profile × thread-count
    (6 slots) and alternate the screening scheme, so any contiguous seed
    range covers every combination."""
    slot = seed % 6
    profile = GEN_PROFILES[slot % 3]
    threads = 2 if slot >= 3 else 1
    scheme = "faulthound" if (seed // 6) % 2 else None
    body_len = 10 + (seed * 7) % 14
    iterations = 3 + seed % 4
    return FuzzCase(seed=seed, profile=profile, threads=threads,
                    scheme=scheme, body_len=body_len, iterations=iterations)


def case_programs(case: FuzzCase) -> List[Program]:
    """The deterministic program set for *case* (one per thread)."""
    return [
        random_program(random.Random((case.seed << 4) + 0x9E3779B1 + tid),
                       body_len=case.body_len,
                       iterations=case.iterations,
                       profile=case.profile,
                       name=f"fuzz-{case.seed}-t{tid}")
        for tid in range(case.threads)
    ]


def _diff_states(thread, prf, interp: Interpreter,
                 cycle: int) -> Optional[Divergence]:
    core_regs, core_mem, core_pc, core_halted = \
        thread.arch_state_snapshot(prf)
    ref_regs, ref_mem, ref_pc, ref_halted = interp.state.snapshot()
    tid = thread.thread_id
    committed = thread.committed_count

    def diverged(kind: str, detail: str) -> Divergence:
        return Divergence(thread_id=tid, cycle=cycle, committed=committed,
                          kind=kind, detail=detail)

    if core_regs != ref_regs:
        for index, (got, want) in enumerate(zip(core_regs, ref_regs)):
            if got != want:
                return diverged("register", f"r{index + 1}: core "
                                            f"{got:#x} != isa {want:#x}")
    if core_mem != ref_mem:
        core_words = dict(core_mem)
        ref_words = dict(ref_mem)
        for address in sorted(set(core_words) | set(ref_words)):
            got = core_words.get(address, 0)
            want = ref_words.get(address, 0)
            if got != want:
                return diverged("memory", f"[{address:#x}]: core {got:#x} "
                                          f"!= isa {want:#x}")
    if core_pc != ref_pc:
        return diverged("pc", f"core {core_pc} != isa {ref_pc}")
    if core_halted != ref_halted:
        return diverged("halt", f"core halted={core_halted} != isa "
                                f"halted={ref_halted}")
    return None


def lockstep_diff(programs: Sequence[Program],
                  screening=None,
                  hw: Optional[HardwareConfig] = None,
                  sanitize: bool = True,
                  sanitize_every: int = 1,
                  max_cycles: int = 200_000,
                  events: Any = None,
                  context: Optional[Dict[str, Any]] = None):
    """Run *programs* through the core and the interpreter in lockstep.

    Returns ``(divergence, core, sanitizer)`` — divergence ``None`` means
    the run is architecturally equivalent end to end. The sanitizer (when
    *sanitize*) runs in collect mode so a structural violation doesn't
    mask an architectural diff; the caller folds both into the verdict.
    """
    core = PipelineCore(list(programs), hw=hw, screening=screening)
    sanitizer = None
    if sanitize:
        sanitizer = InvariantSanitizer(raise_on_violation=False,
                                       events=events)
        if context:
            sanitizer.context.update(context)
        core.enable_sanitizer(sanitizer, every=sanitize_every)
    interps = [Interpreter(program) for program in programs]
    checked = [0] * len(interps)

    divergence = None
    while divergence is None and not core.all_halted \
            and core.cycle < max_cycles:
        # run to the next cycle in which anything commits (eliding
        # provably idle stretches — with a periodic sanitizer armed the
        # core caps each jump so the per-cycle checks still run); the
        # per-thread diff below only ever acts on commit-count changes,
        # so this is the legacy per-cycle loop minus its no-op iterations
        before = core.stats.committed
        core.run_to_commit(before + 1, max_cycles - core.cycle)
        if core.stats.committed == before:
            break    # halted or cycle budget exhausted without a commit
        for thread, interp in zip(core.threads, interps):
            tid = thread.thread_id
            if checked[tid] == thread.committed_count:
                continue
            # catch the interpreter up to this thread's commit count;
            # exceptions retire on the interpreter side only, so the
            # final compare below reconciles a faulting tail instead
            while (checked[tid] < thread.committed_count
                   and not interp.state.halted):
                interp.step()
                checked[tid] += 1
            if checked[tid] < thread.committed_count:
                divergence = Divergence(
                    thread_id=tid, cycle=core.cycle,
                    committed=thread.committed_count, kind="halt",
                    detail=f"isa halted at instret {checked[tid]} but the "
                           f"core kept committing")
                break
            if thread.halted:
                continue  # exception tails reconcile in the final compare
            divergence = _diff_states(thread, core.prf, interp, core.cycle)
            if divergence is not None:
                break

    if divergence is None and not core.all_halted:
        divergence = Divergence(
            thread_id=-1, cycle=core.cycle, committed=core.stats.committed,
            kind="deadlock",
            detail=f"core did not halt within {max_cycles} cycles")

    if divergence is None:
        for thread, interp in zip(core.threads, interps):
            interp.run()
            divergence = _diff_states(thread, core.prf, interp, core.cycle)
            if divergence is not None:
                break
            core_exc = list(thread.exceptions)
            ref_exc = [(e.instret, e.pc, e.address)
                       for e in interp.exceptions]
            if core_exc != ref_exc:
                divergence = Divergence(
                    thread_id=thread.thread_id, cycle=core.cycle,
                    committed=thread.committed_count, kind="exception",
                    detail=f"core {core_exc} != isa {ref_exc}")
                break

    return divergence, core, sanitizer


def run_case(case: FuzzCase, sanitize: bool = True,
             sanitize_every: int = 1, hw: Optional[HardwareConfig] = None,
             max_cycles: int = 200_000, events: Any = None) -> DiffOutcome:
    """Build and diff one corpus case."""
    programs = case_programs(case)
    screening = scheme_unit(case.scheme) if case.scheme else None
    divergence, core, sanitizer = lockstep_diff(
        programs, screening=screening, hw=hw, sanitize=sanitize,
        sanitize_every=sanitize_every, max_cycles=max_cycles,
        events=events, context={"seed": case.seed, "case": case.label})
    violations = sanitizer.violations if sanitizer is not None else []
    return DiffOutcome(
        case=case,
        ok=divergence is None and not violations,
        cycles=core.cycle,
        commits=core.stats.committed,
        divergence=divergence,
        invariant_violations=len(violations),
        first_violation=str(violations[0]) if violations else "",
        mem_order_violations=core.stats.memory_order_violations,
        forwarded_loads=core.stats.forwarded_loads,
    )


@dataclass
class FuzzReport:
    """Aggregate of one corpus sweep."""

    outcomes: List[DiffOutcome]

    @property
    def failures(self) -> List[DiffOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, Any]:
        by_profile: Dict[str, int] = {}
        for outcome in self.outcomes:
            key = f"{outcome.case.profile}/t{outcome.case.threads}"
            by_profile[key] = by_profile.get(key, 0) + 1
        return {
            "cases": len(self.outcomes),
            "failures": len(self.failures),
            "by_profile": dict(sorted(by_profile.items())),
            "cycles": sum(o.cycles for o in self.outcomes),
            "commits": sum(o.commits for o in self.outcomes),
            "mem_order_violations": sum(o.mem_order_violations
                                        for o in self.outcomes),
            "forwarded_loads": sum(o.forwarded_loads
                                   for o in self.outcomes),
        }


def run_corpus(count: int = 200, base_seed: int = 0,
               scheme: Optional[str] = None, sanitize: bool = True,
               sanitize_every: int = 1,
               hw: Optional[HardwareConfig] = None,
               max_cycles: int = 200_000, events: Any = None,
               progress=None) -> FuzzReport:
    """Diff *count* consecutive corpus cases starting at *base_seed*.

    *scheme* (when given) overrides the corpus's scheme rotation for
    every case; *progress* is an optional per-outcome callback.
    """
    outcomes = []
    for offset in range(count):
        case = build_case(base_seed + offset)
        if scheme is not None:
            case = replace(case, scheme=scheme)
        outcome = run_case(case, sanitize=sanitize,
                           sanitize_every=sanitize_every, hw=hw,
                           max_cycles=max_cycles, events=events)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return FuzzReport(outcomes)


__all__ = ["DiffOutcome", "Divergence", "FuzzCase", "FuzzReport",
           "build_case", "case_programs", "lockstep_diff", "run_case",
           "run_corpus"]
