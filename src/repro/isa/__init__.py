"""A small 64-bit RISC ISA: the substrate the pipeline executes.

The paper simulates SPARC; we substitute a deliberately minimal RISC ISA
(DESIGN.md Section 1) with the properties FaultHound's mechanisms depend on:
register-register dataflow, explicit loads/stores with base+offset
addressing, conditional branches, and 64-bit values throughout.

Public surface:

- :class:`~repro.isa.opcodes.Opcode` and per-opcode metadata
- :class:`~repro.isa.instruction.Instruction`
- :class:`~repro.isa.program.Program`
- :func:`~repro.isa.assembler.assemble`
- :class:`~repro.isa.interpreter.Interpreter` (in-order golden model)
"""

from .opcodes import Opcode, OpClass, op_class, op_latency
from .instruction import Instruction
from .program import Program
from .assembler import assemble
from .interpreter import ArchState, Interpreter

__all__ = [
    "Opcode",
    "OpClass",
    "op_class",
    "op_latency",
    "Instruction",
    "Program",
    "assemble",
    "ArchState",
    "Interpreter",
]
