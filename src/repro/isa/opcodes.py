"""Opcode definitions, operand shapes, functional-unit classes and latencies.

Latencies and unit classes follow the paper's Table 2 core (4 ALUs, 2
multipliers, 2 FPUs). "FP" opcodes here operate on the same 64-bit integer
register file — the pipeline only cares which unit pool executes them and
for how many cycles; value semantics stay integral so the golden interpreter
and fault classifier can compare states exactly.
"""

from __future__ import annotations

import enum
from typing import Dict


class Opcode(enum.Enum):
    """Every instruction the ISA defines."""

    # ALU register-register
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    # ALU register-immediate
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    MOVI = "movi"
    # long-latency arithmetic
    MUL = "mul"
    FADD = "fadd"
    FMUL = "fmul"
    # memory
    LD = "ld"
    ST = "st"
    # control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    # misc
    NOP = "nop"
    HALT = "halt"


class OpClass(enum.Enum):
    """Functional-unit / scheduling class of an opcode."""

    ALU = "alu"
    MUL = "mul"
    FPU = "fpu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    OTHER = "other"


_REG_REG_ALU = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SLT,
})
_REG_IMM_ALU = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.MOVI,
})
_BRANCHES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP})

_CLASS: Dict[Opcode, OpClass] = {}
for _op in _REG_REG_ALU | _REG_IMM_ALU:
    _CLASS[_op] = OpClass.ALU
_CLASS[Opcode.MUL] = OpClass.MUL
_CLASS[Opcode.FADD] = OpClass.FPU
_CLASS[Opcode.FMUL] = OpClass.FPU
_CLASS[Opcode.LD] = OpClass.LOAD
_CLASS[Opcode.ST] = OpClass.STORE
for _op in _BRANCHES:
    _CLASS[_op] = OpClass.BRANCH
_CLASS[Opcode.NOP] = OpClass.OTHER
_CLASS[Opcode.HALT] = OpClass.OTHER

#: Execution latency in cycles (load latency is the cache's, not listed here).
_LATENCY: Dict[Opcode, int] = {op: 1 for op in Opcode}
_LATENCY[Opcode.MUL] = 4
_LATENCY[Opcode.FADD] = 3
_LATENCY[Opcode.FMUL] = 5


def op_class(op: Opcode) -> OpClass:
    """Return the functional-unit class of *op*."""
    return _CLASS[op]


def op_latency(op: Opcode) -> int:
    """Return the fixed execution latency of *op* in cycles.

    Loads return 1 here; their real latency comes from the memory hierarchy.
    """
    return _LATENCY[op]


def is_branch(op: Opcode) -> bool:
    """True for conditional and unconditional control transfers."""
    return op in _BRANCHES


def is_conditional_branch(op: Opcode) -> bool:
    """True for branches whose direction depends on register operands."""
    return op in _BRANCHES and op is not Opcode.JMP


def has_dest(op: Opcode) -> bool:
    """True when the opcode writes a destination register."""
    return op in _REG_REG_ALU or op in _REG_IMM_ALU or op in (
        Opcode.MUL, Opcode.FADD, Opcode.FMUL, Opcode.LD)


def reads_two_regs(op: Opcode) -> bool:
    """True when the opcode reads both ``rs1`` and ``rs2``."""
    return (op in _REG_REG_ALU
            or op in (Opcode.MUL, Opcode.FADD, Opcode.FMUL, Opcode.ST)
            or is_conditional_branch(op))


__all__ = [
    "Opcode",
    "OpClass",
    "op_class",
    "op_latency",
    "is_branch",
    "is_conditional_branch",
    "has_dest",
    "reads_two_regs",
]
