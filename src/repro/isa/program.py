"""Program container: a list of instructions plus an initial memory image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .instruction import Instruction
from .opcodes import Opcode


@dataclass
class Program:
    """A fully resolved program.

    ``instructions[i]`` executes at program counter ``i`` (the ISA is
    word-indexed at the instruction level; data memory is byte-addressed).
    ``initial_memory`` maps 8-byte-aligned byte addresses to 64-bit words
    loaded before execution starts. ``initial_regs`` seeds logical registers.
    """

    instructions: List[Instruction]
    initial_memory: Dict[int, int] = field(default_factory=dict)
    initial_regs: Dict[int, int] = field(default_factory=dict)
    name: str = "program"
    labels: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("a program needs at least one instruction")
        last = len(self.instructions) - 1
        for pc, inst in enumerate(self.instructions):
            if inst.is_branch and not 0 <= inst.imm <= last:
                raise ValueError(
                    f"pc {pc}: branch target {inst.imm} outside program")
        for addr in self.initial_memory:
            if addr % 8:
                raise ValueError(f"initial memory address {addr:#x} unaligned")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __deepcopy__(self, memo) -> "Program":
        # Programs are immutable after construction, so the tandem
        # classifier's per-window core fork shares them instead of
        # re-copying thousands of instructions per injected fault.
        return self

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Instruction at *pc*, or ``None`` when *pc* runs off the end."""
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    @property
    def static_loads(self) -> int:
        return sum(1 for i in self.instructions if i.is_load)

    @property
    def static_stores(self) -> int:
        return sum(1 for i in self.instructions if i.is_store)

    def ensure_halts(self) -> "Program":
        """Return a program guaranteed to end in ``HALT`` (appends one)."""
        if self.instructions[-1].opcode is Opcode.HALT:
            return self
        return Program(
            instructions=self.instructions + [Instruction(Opcode.HALT)],
            initial_memory=dict(self.initial_memory),
            initial_regs=dict(self.initial_regs),
            name=self.name,
            labels=dict(self.labels),
        )


__all__ = ["Program"]
