"""In-order functional interpreter: the golden architectural model.

The interpreter defines the ISA's architectural semantics. The out-of-order
pipeline must commit exactly this state for any program (a hypothesis
property test enforces it), which is what lets the fault classifier compare
a fault-injected pipeline against a golden run meaningfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import VALUE_MASK
from ..errors import MemoryFault
from .instruction import Instruction
from .opcodes import Opcode, OpClass
from .program import Program
from .semantics import (alu_result, branch_taken, check_address,
                        effective_address)


@dataclass
class ArchState:
    """Complete architectural state: registers, memory, PC, halt flag."""

    regs: List[int] = field(default_factory=lambda: [0] * 32)
    memory: Dict[int, int] = field(default_factory=dict)
    pc: int = 0
    halted: bool = False
    instret: int = 0

    def read_reg(self, reg: int) -> int:
        return 0 if reg == 0 else self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != 0:
            self.regs[reg] = value & VALUE_MASK

    def read_mem(self, address: int) -> int:
        if not check_address(address):
            raise MemoryFault(address)
        return self.memory.get(address, 0)

    def write_mem(self, address: int, value: int) -> None:
        if not check_address(address):
            raise MemoryFault(address)
        self.memory[address] = value & VALUE_MASK

    def snapshot(self) -> Tuple:
        """Hashable digest of the full architectural state.

        Zero-valued memory words are dropped so a written-then-zeroed word
        compares equal to a never-written one.
        """
        mem = tuple(sorted((a, v) for a, v in self.memory.items() if v))
        return (tuple(self.regs[1:]), mem, self.pc, self.halted)

    def copy(self) -> "ArchState":
        clone = ArchState(regs=list(self.regs), memory=dict(self.memory),
                          pc=self.pc, halted=self.halted, instret=self.instret)
        return clone


@dataclass
class ExceptionRecord:
    """One architectural exception observed during execution."""

    instret: int
    pc: int
    address: int


class Interpreter:
    """Executes a :class:`Program` one instruction at a time, in order."""

    def __init__(self, program: Program):
        self.program = program
        self.state = ArchState()
        for reg, value in program.initial_regs.items():
            self.state.write_reg(reg, value)
        self.state.memory.update(program.initial_memory)
        self.exceptions: List[ExceptionRecord] = []
        #: Per-dynamic-load/store observation stream: (kind, value) where
        #: kind is "load_addr" | "store_addr" | "store_value". Consumed by
        #: the Figure 6 locality characterisation.
        self.mem_trace: List[Tuple[str, int]] = []
        self.trace_memory_ops = False

    def step(self) -> Optional[Instruction]:
        """Execute one instruction; return it, or ``None`` once halted.

        An architectural :class:`MemoryFault` halts the machine (our ISA has
        no trap handlers) after recording the exception — both runs of a
        tandem pair see the identical policy.
        """
        state = self.state
        if state.halted:
            return None
        inst = self.program.fetch(state.pc)
        if inst is None:
            state.halted = True
            return None

        next_pc = state.pc + 1
        op = inst.opcode
        try:
            if op is Opcode.HALT:
                state.halted = True
            elif op is Opcode.NOP:
                pass
            elif inst.is_load:
                address = effective_address(state.read_reg(inst.rs1), inst.imm)
                if self.trace_memory_ops:
                    self.mem_trace.append(("load_addr", address))
                state.write_reg(inst.rd, state.read_mem(address))
            elif inst.is_store:
                address = effective_address(state.read_reg(inst.rs1), inst.imm)
                value = state.read_reg(inst.rs2)
                if self.trace_memory_ops:
                    self.mem_trace.append(("store_addr", address))
                    self.mem_trace.append(("store_value", value))
                state.write_mem(address, value)
            elif inst.is_branch:
                taken = branch_taken(op, state.read_reg(inst.rs1),
                                     state.read_reg(inst.rs2))
                if taken:
                    next_pc = inst.imm
            else:
                result = alu_result(op, state.read_reg(inst.rs1),
                                    state.read_reg(inst.rs2), inst.imm)
                state.write_reg(inst.rd, result)
        except MemoryFault as fault:
            self.exceptions.append(ExceptionRecord(
                instret=state.instret, pc=state.pc, address=fault.address))
            state.halted = True
            state.instret += 1
            return inst

        state.pc = next_pc
        state.instret += 1
        return inst

    def run(self, max_instructions: int = 1_000_000) -> ArchState:
        """Run to ``HALT`` or until *max_instructions* retire."""
        for _ in range(max_instructions):
            if self.step() is None:
                break
        return self.state


def run_program(program: Program, max_instructions: int = 1_000_000) -> ArchState:
    """Convenience wrapper: interpret *program* and return the final state."""
    return Interpreter(program).run(max_instructions)


__all__ = ["ArchState", "ExceptionRecord", "Interpreter", "run_program"]
