"""A two-pass text assembler for the ISA.

Syntax (one instruction per line; ``#`` starts a comment)::

    loop:                       # label
        movi r1, 100
        ld   r2, 8(r3)          # rd, offset(base)
        st   r2, 0(r4)
        add  r5, r5, r2
        addi r1, r1, -1
        bne  r1, r0, loop
        halt

Directives::

    .word <addr> <value>        # seed initial memory
    .reg  <reg>  <value>        # seed an initial register
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..errors import AssemblyError
from .instruction import Instruction
from .opcodes import Opcode
from .program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^(-?\w+)\((r\d+)\)$")

_REG_IMM_OPS = {Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                Opcode.SLLI, Opcode.SRLI}
_REG_REG_OPS = {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
                Opcode.SLL, Opcode.SRL, Opcode.SLT, Opcode.MUL,
                Opcode.FADD, Opcode.FMUL}
_COND_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(f"expected register, got {token!r}", line_no)
    reg = int(match.group(1))
    if reg >= 32:
        raise AssemblyError(f"register r{reg} out of range", line_no)
    return reg


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}", line_no) from None


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def _tokenize(text: str) -> List[Tuple[int, str]]:
    """Strip comments/blank lines; return (line_number, content) pairs."""
    out = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            out.append((line_no, line))
    return out


def assemble(text: str, name: str = "program") -> Program:
    """Assemble *text* into a :class:`~repro.isa.program.Program`.

    Raises :class:`~repro.errors.AssemblyError` with the offending line
    number on any syntax or range error.
    """
    lines = _tokenize(text)

    # Pass 1: label resolution and directive collection.
    labels: Dict[str, int] = {}
    initial_memory: Dict[int, int] = {}
    initial_regs: Dict[int, int] = {}
    body: List[Tuple[int, str]] = []
    pc = 0
    for line_no, line in lines:
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_no)
            labels[label] = pc
            continue
        if line.startswith(".word"):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(".word needs <addr> <value>", line_no)
            addr = _parse_int(parts[1], line_no)
            if addr % 8:
                raise AssemblyError(f"unaligned .word address {addr:#x}", line_no)
            initial_memory[addr] = _parse_int(parts[2], line_no) & ((1 << 64) - 1)
            continue
        if line.startswith(".reg"):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(".reg needs <reg> <value>", line_no)
            reg = _parse_reg(parts[1], line_no)
            initial_regs[reg] = _parse_int(parts[2], line_no) & ((1 << 64) - 1)
            continue
        body.append((line_no, line))
        pc += 1

    # Pass 2: encode.
    def resolve_target(token: str, line_no: int) -> int:
        if token in labels:
            return labels[token]
        return _parse_int(token, line_no)

    instructions: List[Instruction] = []
    for line_no, line in body:
        mnemonic, _, rest = line.partition(" ")
        try:
            op = Opcode(mnemonic.lower())
        except ValueError:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no) from None
        operands = _split_operands(rest)

        try:
            if op in (Opcode.NOP, Opcode.HALT):
                if operands:
                    raise AssemblyError(f"{op.value} takes no operands", line_no)
                inst = Instruction(op)
            elif op is Opcode.MOVI:
                if len(operands) != 2:
                    raise AssemblyError("movi needs rd, imm", line_no)
                inst = Instruction(op, rd=_parse_reg(operands[0], line_no),
                                   imm=_parse_int(operands[1], line_no))
            elif op in _REG_REG_OPS:
                if len(operands) != 3:
                    raise AssemblyError(f"{op.value} needs rd, rs1, rs2", line_no)
                inst = Instruction(op, rd=_parse_reg(operands[0], line_no),
                                   rs1=_parse_reg(operands[1], line_no),
                                   rs2=_parse_reg(operands[2], line_no))
            elif op in _REG_IMM_OPS:
                if len(operands) != 3:
                    raise AssemblyError(f"{op.value} needs rd, rs1, imm", line_no)
                inst = Instruction(op, rd=_parse_reg(operands[0], line_no),
                                   rs1=_parse_reg(operands[1], line_no),
                                   imm=_parse_int(operands[2], line_no))
            elif op in (Opcode.LD, Opcode.ST):
                if len(operands) != 2:
                    raise AssemblyError(f"{op.value} needs reg, offset(base)", line_no)
                mem = _MEM_RE.match(operands[1])
                if not mem:
                    raise AssemblyError(
                        f"expected offset(base), got {operands[1]!r}", line_no)
                offset = _parse_int(mem.group(1), line_no)
                base = _parse_reg(mem.group(2), line_no)
                reg = _parse_reg(operands[0], line_no)
                if op is Opcode.LD:
                    inst = Instruction(op, rd=reg, rs1=base, imm=offset)
                else:
                    inst = Instruction(op, rs2=reg, rs1=base, imm=offset)
            elif op in _COND_BRANCHES:
                if len(operands) != 3:
                    raise AssemblyError(f"{op.value} needs rs1, rs2, target", line_no)
                inst = Instruction(op, rs1=_parse_reg(operands[0], line_no),
                                   rs2=_parse_reg(operands[1], line_no),
                                   imm=resolve_target(operands[2], line_no))
            elif op is Opcode.JMP:
                if len(operands) != 1:
                    raise AssemblyError("jmp needs a target", line_no)
                inst = Instruction(op, imm=resolve_target(operands[0], line_no))
            else:  # pragma: no cover - all opcodes handled above
                raise AssemblyError(f"unhandled opcode {op.value}", line_no)
        except ValueError as exc:
            raise AssemblyError(str(exc), line_no) from None
        instructions.append(inst)

    if not instructions:
        raise AssemblyError("empty program")
    try:
        return Program(instructions=instructions, initial_memory=initial_memory,
                       initial_regs=initial_regs, name=name, labels=labels)
    except ValueError as exc:
        raise AssemblyError(str(exc)) from None


def disassemble(program: Program) -> str:
    """Render *program* back to assembly text (labels become @indices)."""
    return "\n".join(str(inst) for inst in program.instructions)


__all__ = ["assemble", "disassemble"]
