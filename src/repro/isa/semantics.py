"""Shared value semantics for the interpreter and the pipeline execute stage.

Keeping the ALU/branch evaluation in one place guarantees that the
out-of-order pipeline and the in-order golden interpreter can never diverge
on arithmetic — the differential property tests in ``tests/`` rely on this.

All arithmetic is modulo 2**64; comparisons are unsigned; shift amounts use
the low 6 bits of the operand, matching a 64-bit RISC machine.
"""

from __future__ import annotations

from ..config import VALUE_MASK
from .opcodes import Opcode

#: Valid data segment: byte addresses in [0, MEMORY_LIMIT). Anything outside
#: (or unaligned) raises an architectural memory fault — the "noisy" fault
#: channel of the paper's classification.
MEMORY_LIMIT = 1 << 32


def alu_result(op: Opcode, a: int, b: int, imm: int) -> int:
    """Evaluate a non-memory, non-branch opcode.

    *a* and *b* are the 64-bit source operand values (``b`` is ignored for
    immediate forms). Returns the 64-bit destination value.
    """
    if op is Opcode.ADD:
        return (a + b) & VALUE_MASK
    if op is Opcode.SUB:
        return (a - b) & VALUE_MASK
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SLL:
        return (a << (b & 63)) & VALUE_MASK
    if op is Opcode.SRL:
        return a >> (b & 63)
    if op is Opcode.SLT:
        return 1 if a < b else 0
    if op is Opcode.MUL:
        return (a * b) & VALUE_MASK
    if op is Opcode.FADD:
        return (a + b) & VALUE_MASK
    if op is Opcode.FMUL:
        return (a * b) & VALUE_MASK
    if op is Opcode.ADDI:
        return (a + imm) & VALUE_MASK
    if op is Opcode.ANDI:
        return a & (imm & VALUE_MASK)
    if op is Opcode.ORI:
        return a | (imm & VALUE_MASK)
    if op is Opcode.XORI:
        return a ^ (imm & VALUE_MASK)
    if op is Opcode.SLLI:
        return (a << (imm & 63)) & VALUE_MASK
    if op is Opcode.SRLI:
        return a >> (imm & 63)
    if op is Opcode.MOVI:
        return imm & VALUE_MASK
    raise ValueError(f"{op} is not an ALU opcode")


def branch_taken(op: Opcode, a: int, b: int) -> bool:
    """Resolve a branch direction from its two source values."""
    if op is Opcode.BEQ:
        return a == b
    if op is Opcode.BNE:
        return a != b
    if op is Opcode.BLT:
        return a < b
    if op is Opcode.BGE:
        return a >= b
    if op is Opcode.JMP:
        return True
    raise ValueError(f"{op} is not a branch opcode")


def effective_address(base: int, imm: int) -> int:
    """Compute a load/store effective address (64-bit wrap-around)."""
    return (base + imm) & VALUE_MASK


def check_address(address: int) -> bool:
    """True when *address* is a legal 8-byte-aligned data access."""
    return address % 8 == 0 and 0 <= address < MEMORY_LIMIT


__all__ = [
    "MEMORY_LIMIT",
    "alu_result",
    "branch_taken",
    "effective_address",
    "check_address",
]
