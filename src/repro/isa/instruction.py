"""The static :class:`Instruction` record.

Operand conventions (register fields hold logical register numbers 0-31,
``r0`` is hard-wired to zero):

=========  =======================================================
shape      fields used
=========  =======================================================
reg-reg    ``rd = rs1 <op> rs2``
reg-imm    ``rd = rs1 <op> imm`` (``MOVI``: ``rd = imm``)
load       ``rd = MEM[rs1 + imm]``
store      ``MEM[rs1 + imm] = rs2``
branch     compare ``rs1, rs2``; taken target is instruction index ``imm``
jump       unconditional target ``imm``
=========  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import (Opcode, OpClass, has_dest, is_branch, op_class,
                      op_latency, reads_two_regs)


@dataclass(frozen=True)
class Instruction:
    """One static instruction; immutable so programs can be shared freely.

    The derived operand facts (``is_mem``, ``writes_reg``, ...) are fixed
    by the opcode, and the pipeline reads them on every dispatch, issue
    and commit of every dynamic instance — so they are materialised once
    at construction instead of recomputed per access. They are plain
    attributes, not dataclass fields: equality, repr and ``replace`` see
    only the five encoding fields.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < 32:
                raise ValueError(f"{name}={reg} outside r0-r31")
        op = self.opcode
        cache = object.__setattr__
        cache(self, "op_class", op_class(op))
        cache(self, "latency", op_latency(op))
        cache(self, "is_load", op is Opcode.LD)
        cache(self, "is_store", op is Opcode.ST)
        cache(self, "is_mem", op is Opcode.LD or op is Opcode.ST)
        cache(self, "is_branch", is_branch(op))
        # has_dest only: the r0-discard rule is a rename-time decision,
        # applied where the MicroOp caches its own writes_reg flag
        cache(self, "writes_reg", has_dest(op))
        if op in (Opcode.NOP, Opcode.HALT, Opcode.JMP, Opcode.MOVI):
            srcs = ()
        elif op is Opcode.LD:
            srcs = (self.rs1,)
        elif reads_two_regs(op):
            srcs = (self.rs1, self.rs2)
        else:
            srcs = (self.rs1,)
        cache(self, "_source_regs", srcs)

    def __deepcopy__(self, memo) -> "Instruction":
        return self    # frozen: shared by deep copies of in-flight ops

    def __setstate__(self, state) -> None:
        # instructions pickled before the derived facts were materialised
        # carry only the five encoding fields; re-derive the rest
        self.__dict__.update(state)
        if "latency" not in state:
            self.__post_init__()

    def source_regs(self) -> tuple:
        """Logical registers this instruction reads, in operand order."""
        return self._source_regs

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.opcode
        name = op.value
        if op is Opcode.LD:
            return f"{name} r{self.rd}, {self.imm}(r{self.rs1})"
        if op is Opcode.ST:
            return f"{name} r{self.rs2}, {self.imm}(r{self.rs1})"
        if op is Opcode.JMP:
            return f"{name} @{self.imm}"
        if self.is_branch:
            return f"{name} r{self.rs1}, r{self.rs2}, @{self.imm}"
        if op is Opcode.MOVI:
            return f"{name} r{self.rd}, {self.imm}"
        if op in (Opcode.NOP, Opcode.HALT):
            return name
        if op.value.endswith("i"):
            return f"{name} r{self.rd}, r{self.rs1}, {self.imm}"
        return f"{name} r{self.rd}, r{self.rs1}, r{self.rs2}"


__all__ = ["Instruction"]
