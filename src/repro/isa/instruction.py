"""The static :class:`Instruction` record.

Operand conventions (register fields hold logical register numbers 0-31,
``r0`` is hard-wired to zero):

=========  =======================================================
shape      fields used
=========  =======================================================
reg-reg    ``rd = rs1 <op> rs2``
reg-imm    ``rd = rs1 <op> imm`` (``MOVI``: ``rd = imm``)
load       ``rd = MEM[rs1 + imm]``
store      ``MEM[rs1 + imm] = rs2``
branch     compare ``rs1, rs2``; taken target is instruction index ``imm``
jump       unconditional target ``imm``
=========  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import (Opcode, OpClass, has_dest, is_branch, op_class,
                      reads_two_regs)


@dataclass(frozen=True)
class Instruction:
    """One static instruction; immutable so programs can be shared freely."""

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < 32:
                raise ValueError(f"{name}={reg} outside r0-r31")

    def __deepcopy__(self, memo) -> "Instruction":
        return self    # frozen: shared by deep copies of in-flight ops

    @property
    def op_class(self) -> OpClass:
        return op_class(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST

    @property
    def is_mem(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.ST)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.opcode)

    @property
    def writes_reg(self) -> bool:
        """True when the instruction defines a destination register.

        A write to ``r0`` is architecturally discarded but still allocates a
        physical register in the pipeline, matching real renamed designs.
        """
        return has_dest(self.opcode)

    def source_regs(self) -> tuple:
        """Logical registers this instruction reads, in operand order."""
        op = self.opcode
        if op in (Opcode.NOP, Opcode.HALT, Opcode.JMP, Opcode.MOVI):
            return ()
        if op is Opcode.LD:
            return (self.rs1,)
        if reads_two_regs(op):
            return (self.rs1, self.rs2)
        return (self.rs1,)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = self.opcode
        name = op.value
        if op is Opcode.LD:
            return f"{name} r{self.rd}, {self.imm}(r{self.rs1})"
        if op is Opcode.ST:
            return f"{name} r{self.rs2}, {self.imm}(r{self.rs1})"
        if op is Opcode.JMP:
            return f"{name} @{self.imm}"
        if self.is_branch:
            return f"{name} r{self.rs1}, r{self.rs2}, @{self.imm}"
        if op is Opcode.MOVI:
            return f"{name} r{self.rd}, {self.imm}"
        if op in (Opcode.NOP, Opcode.HALT):
            return name
        if op.value.endswith("i"):
            return f"{name} r{self.rd}, r{self.rs1}, {self.imm}"
        return f"{name} r{self.rd}, r{self.rs1}, r{self.rs2}"


__all__ = ["Instruction"]
