"""Binary encoding for instructions and programs.

Instructions encode to one 64-bit word::

    [63:56] opcode    [55:51] rd    [50:46] rs1    [45:41] rs2
    [40:0]  immediate (41-bit two's-complement)

and a :class:`~repro.isa.program.Program` serialises to a small
length-prefixed container (magic, version, instructions, initial
registers, initial memory image). The format exists so generated
workloads can be shipped/cached as artefacts and reloaded bit-exactly;
round-trip fidelity is property-tested.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from ..errors import ReproError
from .instruction import Instruction
from .opcodes import Opcode
from .program import Program

MAGIC = b"RPRO"
VERSION = 1

_IMM_BITS = 41
_IMM_MIN = -(1 << (_IMM_BITS - 1))
_IMM_MAX = (1 << (_IMM_BITS - 1)) - 1
_IMM_MASK = (1 << _IMM_BITS) - 1

_OPCODE_IDS: Dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
_OPCODES_BY_ID: Dict[int, Opcode] = {i: op for op, i in _OPCODE_IDS.items()}


class EncodingError(ReproError):
    """Raised for out-of-range fields or malformed binary input."""


def encode_instruction(inst: Instruction) -> int:
    """Pack *inst* into its 64-bit word."""
    if not _IMM_MIN <= inst.imm <= _IMM_MAX:
        raise EncodingError(
            f"immediate {inst.imm} outside the encodable "
            f"{_IMM_BITS}-bit range")
    word = (_OPCODE_IDS[inst.opcode] << 56
            | inst.rd << 51
            | inst.rs1 << 46
            | inst.rs2 << 41
            | (inst.imm & _IMM_MASK))
    return word


def decode_instruction(word: int) -> Instruction:
    """Unpack a 64-bit word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 64):
        raise EncodingError(f"word {word:#x} is not a 64-bit value")
    opcode_id = word >> 56
    try:
        opcode = _OPCODES_BY_ID[opcode_id]
    except KeyError:
        raise EncodingError(f"unknown opcode id {opcode_id}") from None
    rd = (word >> 51) & 0x1F
    rs1 = (word >> 46) & 0x1F
    rs2 = (word >> 41) & 0x1F
    imm = word & _IMM_MASK
    if imm > _IMM_MAX:
        imm -= 1 << _IMM_BITS
    return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def encode_program(program: Program) -> bytes:
    """Serialise a whole program (code + initial state) to bytes."""
    out = bytearray()
    out += MAGIC
    out += struct.pack("<H", VERSION)
    name = program.name.encode()[:255]
    out += struct.pack("<B", len(name)) + name
    out += struct.pack("<I", len(program.instructions))
    for inst in program.instructions:
        out += struct.pack("<Q", encode_instruction(inst))
    out += struct.pack("<I", len(program.initial_regs))
    for reg, value in sorted(program.initial_regs.items()):
        out += struct.pack("<BQ", reg, value)
    out += struct.pack("<I", len(program.initial_memory))
    for address, value in sorted(program.initial_memory.items()):
        out += struct.pack("<QQ", address, value)
    return bytes(out)


def decode_program(blob: bytes) -> Program:
    """Reconstruct a program from :func:`encode_program` output."""
    view = memoryview(blob)
    if bytes(view[:4]) != MAGIC:
        raise EncodingError("bad magic; not a serialised program")
    (version,) = struct.unpack_from("<H", view, 4)
    if version != VERSION:
        raise EncodingError(f"unsupported version {version}")
    offset = 6
    (name_len,) = struct.unpack_from("<B", view, offset)
    offset += 1
    name = bytes(view[offset:offset + name_len]).decode()
    offset += name_len

    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    instructions: List[Instruction] = []
    for _ in range(count):
        (word,) = struct.unpack_from("<Q", view, offset)
        offset += 8
        instructions.append(decode_instruction(word))

    (reg_count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    initial_regs: Dict[int, int] = {}
    for _ in range(reg_count):
        reg, value = struct.unpack_from("<BQ", view, offset)
        offset += 9
        initial_regs[reg] = value

    (mem_count,) = struct.unpack_from("<I", view, offset)
    offset += 4
    initial_memory: Dict[int, int] = {}
    for _ in range(mem_count):
        address, value = struct.unpack_from("<QQ", view, offset)
        offset += 16
        initial_memory[address] = value

    if offset != len(blob):
        raise EncodingError(f"{len(blob) - offset} trailing bytes")
    try:
        return Program(instructions=instructions,
                       initial_memory=initial_memory,
                       initial_regs=initial_regs, name=name)
    except ValueError as exc:
        raise EncodingError(str(exc)) from None


__all__ = ["EncodingError", "encode_instruction", "decode_instruction",
           "encode_program", "decode_program", "MAGIC", "VERSION"]
