# Convenience targets for the FaultHound reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick bench-summary figures examples clean

install:
	pip install -e .[test]

test:
	$(PYTHON) -m pytest tests/ -q

test-log:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-log:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-quick:
	REPRO_SCALE=quick $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-summary:
	$(PYTHON) benchmarks/summarize.py

figures:
	$(PYTHON) -m repro.cli figure table1
	$(PYTHON) -m repro.cli figure table2
	$(PYTHON) -m repro.cli figure fig6

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/value_locality_explorer.py
	$(PYTHON) examples/fault_injection_campaign.py astar 30
	$(PYTHON) examples/pipeline_visualizer.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
